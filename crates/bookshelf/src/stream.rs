//! Streaming, allocation-light Bookshelf readers.
//!
//! The record parsers in [`crate::parse_nodes`] & friends materialize one
//! `String` per name and one `Vec` per net — fine at 1k cells, ruinous at a
//! million. The pull readers here yield entries whose string fields are
//! `&str` slices *borrowed from the input text*: parsing a 119 MB `.nets`
//! file allocates nothing per line, and a consumer that interns names into
//! its own arena (as [`crate::Design::assemble`] does) never copies a byte
//! it does not keep.
//!
//! Each reader parses the file header eagerly (so builders can pre-size
//! from the declared counts) and validates the declared counts against the
//! records actually seen when the stream is exhausted, exactly like the
//! record parsers. The record parsers are thin wrappers over these readers,
//! so both paths accept the same dialect and report the same errors.

use crate::error::ParseBookshelfError;
use crate::lexer::{parse_f64, split_key_value, Lines};
use crate::nets::PinDirectionHint;

/// Declared counts from a `.nodes` header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodesHeader {
    /// `NumNodes` — total node records.
    pub num_nodes: usize,
    /// `NumTerminals` — how many of them are fixed terminals.
    pub num_terminals: usize,
}

/// One `.nodes` record, borrowing the node name from the input text.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NodeEntry<'a> {
    /// Node (cell or terminal) name.
    pub name: &'a str,
    /// Width in Bookshelf site units.
    pub width: f64,
    /// Height in Bookshelf site units.
    pub height: f64,
    /// Whether the node is a fixed terminal.
    pub terminal: bool,
}

/// Pull reader over a `.nodes` file.
pub struct NodesReader<'a> {
    lines: Lines<'a>,
    header: NodesHeader,
    seen: usize,
    seen_terminals: usize,
}

impl<'a> NodesReader<'a> {
    /// Opens the reader, consuming the format header and count lines.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] if the `NumNodes`/`NumTerminals`
    /// header lines are missing or malformed.
    pub fn new(text: &'a str) -> Result<Self, ParseBookshelfError> {
        let mut lines = Lines::new("nodes", text);
        lines.skip_format_header();
        let num_nodes = lines.expect_count("NumNodes")?;
        let num_terminals = lines.expect_count("NumTerminals")?;
        Ok(Self {
            lines,
            header: NodesHeader {
                num_nodes,
                num_terminals,
            },
            seen: 0,
            seen_terminals: 0,
        })
    }

    /// The declared counts, for pre-sizing builders.
    pub fn header(&self) -> NodesHeader {
        self.header
    }

    /// The next node record, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] for malformed records, and — on the
    /// call that reaches end of file — when the declared counts disagree
    /// with the records seen.
    pub fn next_node(&mut self) -> Result<Option<NodeEntry<'a>>, ParseBookshelfError> {
        let Some((no, line)) = self.lines.next_line() else {
            if self.seen != self.header.num_nodes {
                return Err(ParseBookshelfError::new(
                    "nodes",
                    0,
                    format!(
                        "NumNodes says {} but found {} records",
                        self.header.num_nodes, self.seen
                    ),
                ));
            }
            if self.seen_terminals != self.header.num_terminals {
                return Err(ParseBookshelfError::new(
                    "nodes",
                    0,
                    format!(
                        "NumTerminals says {} but found {}",
                        self.header.num_terminals, self.seen_terminals
                    ),
                ));
            }
            return Ok(None);
        };
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| self.lines.error(no, "expected a node name"))?;
        let width = parse_f64(
            "nodes",
            no,
            tokens
                .next()
                .ok_or_else(|| self.lines.error(no, "missing width"))?,
            "width",
        )?;
        let height = parse_f64(
            "nodes",
            no,
            tokens
                .next()
                .ok_or_else(|| self.lines.error(no, "missing height"))?,
            "height",
        )?;
        let terminal = match tokens.next() {
            None => false,
            Some(t) if t.eq_ignore_ascii_case("terminal") => true,
            Some(t) if t.eq_ignore_ascii_case("terminal_NI") => true,
            Some(t) => return Err(self.lines.error(no, format!("unexpected token `{t}`"))),
        };
        self.seen += 1;
        self.seen_terminals += usize::from(terminal);
        Ok(Some(NodeEntry {
            name,
            width,
            height,
            terminal,
        }))
    }
}

/// Declared counts from a `.nets` header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NetsHeader {
    /// `NumNets` — total net records.
    pub num_nets: usize,
    /// `NumPins` — total pin lines across all nets.
    pub num_pins: usize,
}

/// One `NetDegree` header line: the pins follow via
/// [`NetsReader::next_pin`], exactly `degree` of them.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetEntry<'a> {
    /// Net name as written, or `None` when the file omits it (consumers
    /// conventionally substitute `net{index}`).
    pub name: Option<&'a str>,
    /// Declared pin count.
    pub degree: usize,
    /// Zero-based index of this net in file order.
    pub index: usize,
}

/// One pin line of the current net.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetPinEntry<'a> {
    /// Name of the node the pin belongs to.
    pub node: &'a str,
    /// Direction marker, if present.
    pub direction: Option<PinDirectionHint>,
    /// Pin x offset from the node center, site units (0 if unspecified).
    pub offset_x: f64,
    /// Pin y offset from the node center, site units (0 if unspecified).
    pub offset_y: f64,
}

/// Pull reader over a `.nets` file.
///
/// Usage: call [`next_net`](Self::next_net); for each returned entry call
/// [`next_pin`](Self::next_pin) exactly `degree` times before asking for
/// the next net.
pub struct NetsReader<'a> {
    lines: Lines<'a>,
    header: NetsHeader,
    nets_seen: usize,
    pins_seen: usize,
    /// Pins left to read in the current net.
    pins_remaining: usize,
    /// Line number and degree of the current `NetDegree` header, for
    /// truncation diagnostics.
    current_line: usize,
    current_degree: usize,
    current_name: Option<&'a str>,
}

impl<'a> NetsReader<'a> {
    /// Opens the reader, consuming the format header and count lines.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] if the `NumNets`/`NumPins` header
    /// lines are missing or malformed.
    pub fn new(text: &'a str) -> Result<Self, ParseBookshelfError> {
        let mut lines = Lines::new("nets", text);
        lines.skip_format_header();
        let num_nets = lines.expect_count("NumNets")?;
        let num_pins = lines.expect_count("NumPins")?;
        Ok(Self {
            lines,
            header: NetsHeader { num_nets, num_pins },
            nets_seen: 0,
            pins_seen: 0,
            pins_remaining: 0,
            current_line: 0,
            current_degree: 0,
            current_name: None,
        })
    }

    /// The declared counts, for pre-sizing builders.
    pub fn header(&self) -> NetsHeader {
        self.header
    }

    /// Display name of the current net, substituting the conventional
    /// default for unnamed records.
    fn current_display_name(&self) -> String {
        match self.current_name {
            Some(n) => n.to_string(),
            None => format!("net{}", self.nets_seen.saturating_sub(1)),
        }
    }

    /// The next `NetDegree` header, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] for malformed headers, if the
    /// previous net's pins were not fully consumed, and — at end of file —
    /// when declared counts disagree with the records seen.
    pub fn next_net(&mut self) -> Result<Option<NetEntry<'a>>, ParseBookshelfError> {
        if self.pins_remaining > 0 {
            return Err(ParseBookshelfError::new(
                "nets",
                self.current_line,
                format!(
                    "net `{}`: {} pin(s) not consumed before next_net",
                    self.current_display_name(),
                    self.pins_remaining
                ),
            ));
        }
        let Some((no, line)) = self.lines.next_line() else {
            if self.nets_seen != self.header.num_nets {
                return Err(ParseBookshelfError::new(
                    "nets",
                    0,
                    format!(
                        "NumNets says {} but found {}",
                        self.header.num_nets, self.nets_seen
                    ),
                ));
            }
            if self.pins_seen != self.header.num_pins {
                return Err(ParseBookshelfError::new(
                    "nets",
                    0,
                    format!(
                        "NumPins says {} but found {}",
                        self.header.num_pins, self.pins_seen
                    ),
                ));
            }
            return Ok(None);
        };
        let (key, rest) = split_key_value(line).ok_or_else(|| {
            self.lines
                .error(no, format!("expected `NetDegree : d name`, got `{line}`"))
        })?;
        if !key.eq_ignore_ascii_case("NetDegree") {
            return Err(self
                .lines
                .error(no, format!("expected `NetDegree`, got `{key}`")));
        }
        let mut rest_tokens = rest.split_whitespace();
        let degree: usize = rest_tokens
            .next()
            .ok_or_else(|| self.lines.error(no, "missing net degree"))?
            .parse()
            .map_err(|_| self.lines.error(no, "net degree is not an integer"))?;
        let name = rest_tokens.next();
        let index = self.nets_seen;
        self.nets_seen += 1;
        self.pins_remaining = degree;
        self.current_line = no;
        self.current_degree = degree;
        self.current_name = name;
        Ok(Some(NetEntry {
            name,
            degree,
            index,
        }))
    }

    /// The next pin line of the current net.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] if called with no pins remaining,
    /// if the file ends mid-net, or for malformed pin lines.
    pub fn next_pin(&mut self) -> Result<NetPinEntry<'a>, ParseBookshelfError> {
        if self.pins_remaining == 0 {
            return Err(ParseBookshelfError::new(
                "nets",
                self.current_line,
                "next_pin called with no pins remaining",
            ));
        }
        let Some((no, line)) = self.lines.next_line() else {
            return Err(ParseBookshelfError::new(
                "nets",
                self.current_line,
                format!(
                    "net `{}` ends before {} pins",
                    self.current_display_name(),
                    self.current_degree
                ),
            ));
        };
        self.pins_remaining -= 1;
        self.pins_seen += 1;
        // Forms: `node`, `node I`, `node I : x y`.
        let (head, offsets) = match line.split_once(':') {
            Some((h, o)) => (h.trim(), Some(o.trim())),
            None => (line, None),
        };
        let mut tokens = head.split_whitespace();
        let node = tokens
            .next()
            .ok_or_else(|| self.lines.error(no, "expected a node name on pin line"))?;
        let direction = match tokens.next() {
            None => None,
            Some(t) => Some(
                PinDirectionHint::from_token(t)
                    .ok_or_else(|| self.lines.error(no, format!("unknown pin direction `{t}`")))?,
            ),
        };
        if let Some(t) = tokens.next() {
            return Err(self
                .lines
                .error(no, format!("unexpected token `{t}` on pin line")));
        }
        let (offset_x, offset_y) = match offsets {
            None => (0.0, 0.0),
            Some(o) => {
                let mut toks = o.split_whitespace();
                let x = parse_f64(
                    "nets",
                    no,
                    toks.next()
                        .ok_or_else(|| self.lines.error(no, "missing pin x offset"))?,
                    "pin x offset",
                )?;
                let y = parse_f64(
                    "nets",
                    no,
                    toks.next()
                        .ok_or_else(|| self.lines.error(no, "missing pin y offset"))?,
                    "pin y offset",
                )?;
                (x, y)
            }
        };
        Ok(NetPinEntry {
            node,
            direction,
            offset_x,
            offset_y,
        })
    }
}

/// One `.pl` record, borrowing name and orientation from the input text.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PlEntry<'a> {
    /// Node name.
    pub name: &'a str,
    /// X coordinate, site units.
    pub x: f64,
    /// Y coordinate, site units.
    pub y: f64,
    /// Layer index for 3D placements (`None` in standard 2D files).
    pub layer: Option<u32>,
    /// Orientation token (`N` when unspecified).
    pub orient: &'a str,
    /// Whether the record carries the `/FIXED` attribute.
    pub fixed: bool,
}

/// Pull reader over a `.pl` file (2D or the 3D layer extension).
pub struct PlReader<'a> {
    lines: Lines<'a>,
}

impl<'a> PlReader<'a> {
    /// Opens the reader, consuming the optional format header.
    pub fn new(text: &'a str) -> Self {
        let mut lines = Lines::new("pl", text);
        lines.skip_format_header();
        Self { lines }
    }

    /// The next placement record, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] for records with missing or
    /// non-numeric coordinates or unknown trailing attributes.
    pub fn next_record(&mut self) -> Result<Option<PlEntry<'a>>, ParseBookshelfError> {
        let Some((no, line)) = self.lines.next_line() else {
            return Ok(None);
        };
        let (head, tail) = match line.split_once(':') {
            Some((h, t)) => (h.trim(), Some(t.trim())),
            None => (line, None),
        };
        let mut tokens = head.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| self.lines.error(no, "expected a node name"))?;
        let x = parse_f64(
            "pl",
            no,
            tokens
                .next()
                .ok_or_else(|| self.lines.error(no, "missing x"))?,
            "x",
        )?;
        let y = parse_f64(
            "pl",
            no,
            tokens
                .next()
                .ok_or_else(|| self.lines.error(no, "missing y"))?,
            "y",
        )?;
        let layer = match tokens.next() {
            None => None,
            Some(t) => Some(t.parse::<u32>().map_err(|_| {
                self.lines
                    .error(no, format!("layer `{t}` is not an integer"))
            })?),
        };
        if let Some(t) = tokens.next() {
            return Err(self.lines.error(no, format!("unexpected token `{t}`")));
        }
        let (orient, fixed) = match tail {
            None => ("N", false),
            Some(t) => {
                let mut toks = t.split_whitespace();
                let orient = toks.next().unwrap_or("N");
                let fixed = match toks.next() {
                    None => false,
                    Some(a) if a.eq_ignore_ascii_case("/FIXED") => true,
                    Some(a) if a.eq_ignore_ascii_case("/FIXED_NI") => true,
                    Some(a) => {
                        return Err(self.lines.error(no, format!("unexpected attribute `{a}`")))
                    }
                };
                (orient, fixed)
            }
        };
        Ok(Some(PlEntry {
            name,
            x,
            y,
            layer,
            orient,
            fixed,
        }))
    }
}

/// One `.wts` record, borrowing the name from the input text.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WtsEntry<'a> {
    /// Net (or node, in some suites) name.
    pub name: &'a str,
    /// Weight value.
    pub weight: f64,
}

/// Pull reader over a `.wts` file.
pub struct WtsReader<'a> {
    lines: Lines<'a>,
}

impl<'a> WtsReader<'a> {
    /// Opens the reader, consuming the optional format header.
    pub fn new(text: &'a str) -> Self {
        let mut lines = Lines::new("wts", text);
        lines.skip_format_header();
        Self { lines }
    }

    /// The next weight record, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBookshelfError`] for records without exactly a name
    /// and a numeric weight.
    pub fn next_record(&mut self) -> Result<Option<WtsEntry<'a>>, ParseBookshelfError> {
        let Some((no, line)) = self.lines.next_line() else {
            return Ok(None);
        };
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| self.lines.error(no, "expected a name"))?;
        let weight = parse_f64(
            "wts",
            no,
            tokens
                .next()
                .ok_or_else(|| self.lines.error(no, "missing weight"))?,
            "weight",
        )?;
        if let Some(t) = tokens.next() {
            return Err(self.lines.error(no, format!("unexpected token `{t}`")));
        }
        Ok(Some(WtsEntry { name, weight }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_reader_streams_without_copying() {
        let text = "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\n a 4 8\n p 1 1 terminal\n";
        let mut r = NodesReader::new(text).unwrap();
        assert_eq!(
            r.header(),
            NodesHeader {
                num_nodes: 2,
                num_terminals: 1
            }
        );
        let a = r.next_node().unwrap().unwrap();
        assert_eq!(a.name, "a");
        // The name is a slice of the input, not a copy.
        assert_eq!(
            a.name.as_ptr(),
            text[text.find(" a 4").unwrap() + 1..].as_ptr()
        );
        let p = r.next_node().unwrap().unwrap();
        assert!(p.terminal);
        assert!(r.next_node().unwrap().is_none());
    }

    #[test]
    fn nodes_reader_validates_counts_at_eof() {
        let mut r = NodesReader::new("NumNodes : 2\nNumTerminals : 0\n a 1 1\n").unwrap();
        r.next_node().unwrap();
        assert!(r.next_node().unwrap_err().to_string().contains("NumNodes"));
    }

    #[test]
    fn nets_reader_streams_nets_and_pins() {
        let text =
            "NumNets : 2\nNumPins : 3\nNetDegree : 2 n0\n a O\n b I : 0.5 -1\nNetDegree : 1\n b\n";
        let mut r = NetsReader::new(text).unwrap();
        let n0 = r.next_net().unwrap().unwrap();
        assert_eq!(n0.name, Some("n0"));
        assert_eq!(n0.degree, 2);
        let p0 = r.next_pin().unwrap();
        assert_eq!(p0.node, "a");
        assert_eq!(p0.direction, Some(PinDirectionHint::Output));
        let p1 = r.next_pin().unwrap();
        assert_eq!((p1.offset_x, p1.offset_y), (0.5, -1.0));
        let n1 = r.next_net().unwrap().unwrap();
        assert_eq!(n1.name, None);
        assert_eq!(n1.index, 1);
        r.next_pin().unwrap();
        assert!(r.next_net().unwrap().is_none());
    }

    #[test]
    fn nets_reader_rejects_unconsumed_pins() {
        let text = "NumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a\n b\n";
        let mut r = NetsReader::new(text).unwrap();
        r.next_net().unwrap();
        assert!(r
            .next_net()
            .unwrap_err()
            .to_string()
            .contains("not consumed"));
    }

    #[test]
    fn nets_reader_reports_truncated_net() {
        let text = "NumNets : 1\nNumPins : 3\nNetDegree : 3 n0\n a\n b\n";
        let mut r = NetsReader::new(text).unwrap();
        r.next_net().unwrap();
        r.next_pin().unwrap();
        r.next_pin().unwrap();
        let err = r.next_pin().unwrap_err();
        assert!(err.to_string().contains("ends before 3 pins"));
    }

    #[test]
    fn pl_reader_streams_records() {
        let mut r = PlReader::new("UCLA pl 1.0\na1 12 24 : N\na2 -3 0.5 3 : FS /FIXED\n");
        let a1 = r.next_record().unwrap().unwrap();
        assert_eq!((a1.name, a1.x, a1.y, a1.layer), ("a1", 12.0, 24.0, None));
        let a2 = r.next_record().unwrap().unwrap();
        assert_eq!(a2.layer, Some(3));
        assert_eq!(a2.orient, "FS");
        assert!(a2.fixed);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn wts_reader_streams_records() {
        let mut r = WtsReader::new("UCLA wts 1.0\nn0 1\nn1 2.5\n");
        assert_eq!(r.next_record().unwrap().unwrap().weight, 1.0);
        let n1 = r.next_record().unwrap().unwrap();
        assert_eq!((n1.name, n1.weight), ("n1", 2.5));
        assert!(r.next_record().unwrap().is_none());
    }
}
