//! `.scl` files: core row definitions.

use crate::error::ParseBookshelfError;
use crate::lexer::{split_key_value, Lines};
use std::fmt::Write as _;

/// One `CoreRow` from a `.scl` file. All distances are in site units.
#[derive(Clone, PartialEq, Debug)]
pub struct RowRecord {
    /// Row y coordinate (bottom edge).
    pub coordinate: f64,
    /// Row height.
    pub height: f64,
    /// Width of a placement site.
    pub site_width: f64,
    /// Pitch between sites.
    pub site_spacing: f64,
    /// X coordinate of the first site.
    pub subrow_origin: f64,
    /// Number of sites in the row.
    pub num_sites: usize,
}

impl RowRecord {
    /// X coordinate of the right edge of the row.
    pub fn right_edge(&self) -> f64 {
        self.subrow_origin + self.site_spacing * self.num_sites as f64
    }
}

/// Parsed contents of a `.scl` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SclFile {
    /// All rows, in file order (IBM-PLACE orders them bottom-up).
    pub rows: Vec<RowRecord>,
}

/// Parses the text of a `.scl` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] when `NumRows` is missing or wrong, a row
/// block is missing `End`, or a numeric field is malformed. Unrecognized
/// row attributes (e.g. `Siteorient`) are ignored, as different suites vary.
pub fn parse_scl(text: &str) -> Result<SclFile, ParseBookshelfError> {
    const KIND: &str = "scl";
    let mut lines = Lines::new(KIND, text);
    lines.skip_format_header();
    let num_rows = lines.expect_count("NumRows")?;
    let mut rows = Vec::with_capacity(num_rows);
    while let Some((no, line)) = lines.next_line() {
        if !line.to_ascii_lowercase().starts_with("corerow") {
            return Err(lines.error(no, format!("expected `CoreRow`, got `{line}`")));
        }
        let mut coordinate = None;
        let mut height = None;
        let mut site_width = 1.0;
        let mut site_spacing = 1.0;
        let mut subrow_origin = None;
        let mut num_sites = None;
        loop {
            let (fno, fline) = lines
                .next_line()
                .ok_or_else(|| lines.error(no, "row block not terminated with `End`"))?;
            if fline.eq_ignore_ascii_case("End") {
                break;
            }
            // A line may hold several `Key : value` pairs (SubrowOrigin and
            // NumSites conventionally share a line).
            for part in split_multi_kv(fline) {
                let Some((key, value)) = split_key_value(&part) else {
                    return Err(lines.error(fno, format!("expected `Key : value`, got `{part}`")));
                };
                let num = || -> Result<f64, ParseBookshelfError> {
                    value
                        .split_whitespace()
                        .next()
                        .unwrap_or("")
                        .parse()
                        .map_err(|_| {
                            ParseBookshelfError::new(
                                KIND,
                                fno,
                                format!("`{key}` value `{value}` is not a number"),
                            )
                        })
                };
                match key.to_ascii_lowercase().as_str() {
                    "coordinate" => coordinate = Some(num()?),
                    "height" => height = Some(num()?),
                    "sitewidth" => site_width = num()?,
                    "sitespacing" => site_spacing = num()?,
                    "subroworigin" => subrow_origin = Some(num()?),
                    "numsites" => num_sites = Some(num()? as usize),
                    // Sitesymmetry, Siteorient, etc. are irrelevant here.
                    _ => {}
                }
            }
        }
        rows.push(RowRecord {
            coordinate: coordinate.ok_or_else(|| lines.error(no, "row missing Coordinate"))?,
            height: height.ok_or_else(|| lines.error(no, "row missing Height"))?,
            site_width,
            site_spacing,
            subrow_origin: subrow_origin
                .ok_or_else(|| lines.error(no, "row missing SubrowOrigin"))?,
            num_sites: num_sites.ok_or_else(|| lines.error(no, "row missing NumSites"))?,
        });
    }
    if rows.len() != num_rows {
        return Err(ParseBookshelfError::new(
            KIND,
            0,
            format!("NumRows says {num_rows} but found {}", rows.len()),
        ));
    }
    Ok(SclFile { rows })
}

/// Splits a line holding multiple `Key : value` pairs into one string per
/// pair. Heuristic: a new key starts at a token that follows a numeric value.
fn split_multi_kv(line: &str) -> Vec<String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let mut parts = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    let mut seen_value = false;
    for t in tokens {
        if seen_value && t != ":" && t.parse::<f64>().is_err() {
            parts.push(current.join(" "));
            current = Vec::new();
            seen_value = false;
        }
        if t.parse::<f64>().is_ok() {
            seen_value = true;
        }
        current.push(t);
    }
    if !current.is_empty() {
        parts.push(current.join(" "));
    }
    parts
}

/// Renders an [`SclFile`] back to Bookshelf text.
pub fn write_scl(file: &SclFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA scl 1.0\n");
    let _ = writeln!(out, "NumRows : {}", file.rows.len());
    for r in &file.rows {
        out.push_str("CoreRow Horizontal\n");
        let _ = writeln!(out, "  Coordinate : {}", r.coordinate);
        let _ = writeln!(out, "  Height : {}", r.height);
        let _ = writeln!(out, "  Sitewidth : {}", r.site_width);
        let _ = writeln!(out, "  Sitespacing : {}", r.site_spacing);
        let _ = writeln!(
            out,
            "  SubrowOrigin : {} NumSites : {}",
            r.subrow_origin, r.num_sites
        );
        out.push_str("End\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 8
  Sitewidth : 1
  Sitespacing : 1
  Siteorient : N
  SubrowOrigin : 0 NumSites : 100
End
CoreRow Horizontal
  Coordinate : 10
  Height : 8
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 100
End
";

    #[test]
    fn parses_sample() {
        let f = parse_scl(SAMPLE).unwrap();
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.rows[0].height, 8.0);
        assert_eq!(f.rows[0].num_sites, 100);
        assert_eq!(f.rows[1].coordinate, 10.0);
        assert_eq!(f.rows[0].right_edge(), 100.0);
    }

    #[test]
    fn round_trips() {
        let f = parse_scl(SAMPLE).unwrap();
        assert_eq!(parse_scl(&write_scl(&f)).unwrap(), f);
    }

    #[test]
    fn missing_end_is_error() {
        let bad = "NumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n";
        assert!(parse_scl(bad).is_err());
    }

    #[test]
    fn missing_field_is_error() {
        let bad = "NumRows : 1\nCoreRow Horizontal\n Coordinate : 0\nEnd\n";
        let err = parse_scl(bad).unwrap_err();
        assert!(err.to_string().contains("Height"));
    }

    #[test]
    fn row_count_mismatch_is_error() {
        let bad = "NumRows : 3\nCoreRow Horizontal\n Coordinate : 0\n Height : 8\n SubrowOrigin : 0 NumSites : 5\nEnd\n";
        assert!(parse_scl(bad).is_err());
    }

    #[test]
    fn split_multi_kv_splits_pairs() {
        let parts = split_multi_kv("SubrowOrigin : 0 NumSites : 100");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], "SubrowOrigin : 0");
        assert_eq!(parts[1], "NumSites : 100");
    }
}
