//! Straight-path thermal resistance model (paper §2 and §3.2).
//!
//! `R_j^cell` — the resistance from a cell to ambient — is approximated by
//! assuming heat leaves the cell along six straight columns (±x, ±y, ±z),
//! each with cross-section equal to the cell footprint, through the stack's
//! effective conductivity, ending in a convective film at the respective
//! chip face. The six paths combine in parallel. The bottom (−z) path ends
//! at the heat sink and dominates.

use crate::{LayerStack, ThermalError};

/// Linearized vertical resistance profile `R(z) ≈ R0 + slope · d_z`
/// (paper §3.2), where `d_z` is the cell's height above the bottom of the
/// chip.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VerticalProfile {
    /// Resistance at the bottom of the chip, K/W.
    pub r0: f64,
    /// Resistance increase per meter of height, K/(W·m).
    pub slope: f64,
}

impl VerticalProfile {
    /// Resistance at height `z` above the bottom face, K/W.
    pub fn at(&self, z: f64) -> f64 {
        self.r0 + self.slope * z
    }
}

/// Straight-path resistance calculator for a specific chip.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ResistanceModel {
    stack: LayerStack,
    /// Chip footprint width (x extent), meters.
    width: f64,
    /// Chip footprint height (y extent), meters.
    depth: f64,
}

impl ResistanceModel {
    /// Creates a model for a chip with the given stack and footprint.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if the stack or footprint
    /// is invalid.
    pub fn new(stack: LayerStack, width: f64, depth: f64) -> crate::Result<Self> {
        stack.validate()?;
        for (name, value) in [("chip width", width), ("chip depth", depth)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        Ok(Self {
            stack,
            width,
            depth,
        })
    }

    /// The layer stack this model was built for.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Thermal resistance to ambient for a cell of footprint `cell_area`
    /// at position `(x, y)` on device layer `layer`, K/W.
    ///
    /// All six straight paths are combined in parallel; each is
    /// `L/(kA) + 1/(hA)` with `A = cell_area`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range for the stack.
    pub fn cell_resistance(&self, x: f64, y: f64, layer: usize, cell_area: f64) -> f64 {
        let k = self.stack.conductivity;
        let h_side = self.stack.side_convection_coefficient;
        let z = self.stack.layer_center_z(layer);
        let a = cell_area.max(f64::MIN_POSITIVE);

        let path = |length: f64, h: f64| -> f64 { length / (k * a) + 1.0 / (h * a) };

        let paths = [
            self.downward_resistance(layer, cell_area), // -z: heat sink
            path(self.stack.total_height() - z, h_side), // +z: top face
            path(x.max(0.0), h_side),                   // -x
            path((self.width - x).max(0.0), h_side),    // +x
            path(y.max(0.0), h_side),                   // -y
            path((self.depth - y).max(0.0), h_side),    // +y
        ];
        let conductance: f64 = paths.iter().map(|r| 1.0 / r).sum();
        1.0 / conductance
    }

    /// Resistance of the dominant downward path only, K/W — the quantity
    /// the thermal-resistance-reduction nets linearize. The path crosses
    /// the low-conductivity device stack below the cell, then the bulk
    /// substrate, then the convective sink film.
    pub fn downward_resistance(&self, layer: usize, cell_area: f64) -> f64 {
        let z = self.stack.layer_center_z(layer);
        let a = cell_area.max(f64::MIN_POSITIVE);
        let through_stack = z - self.stack.substrate_thickness;
        through_stack / (self.stack.conductivity * a)
            + self.stack.substrate_thickness / (self.stack.substrate_conductivity * a)
            + 1.0 / (self.stack.heat_sink.convection_coefficient * a)
    }

    /// Fits the §3.2 linear profile `R0_z + Rz_slope · d_z` for a typical
    /// cell of area `cell_area`, evaluated at the chip center.
    ///
    /// With one device layer the slope falls back to the conduction slope
    /// `1/(kA)` of the downward path.
    pub fn vertical_profile(&self, cell_area: f64) -> VerticalProfile {
        let cx = self.width / 2.0;
        let cy = self.depth / 2.0;
        let n = self.stack.num_layers;
        let z0 = self.stack.layer_center_z(0);
        let r_bottom = self.cell_resistance(cx, cy, 0, cell_area);
        if n == 1 {
            return VerticalProfile {
                r0: r_bottom,
                slope: 1.0 / (self.stack.conductivity * cell_area.max(f64::MIN_POSITIVE)),
            };
        }
        let z1 = self.stack.layer_center_z(n - 1);
        let r_top = self.cell_resistance(cx, cy, n - 1, cell_area);
        let slope = (r_top - r_bottom) / (z1 - z0);
        VerticalProfile {
            r0: r_bottom - slope * z0,
            slope,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(layers: usize) -> ResistanceModel {
        ResistanceModel::new(LayerStack::mitll_0_18um(layers), 1.0e-3, 1.0e-3).unwrap()
    }

    #[test]
    fn resistance_grows_with_layer() {
        let m = model(4);
        let a = 25.0e-12; // 5 µm × 5 µm cell
        let r: Vec<f64> = (0..4)
            .map(|l| m.cell_resistance(0.5e-3, 0.5e-3, l, a))
            .collect();
        for w in r.windows(2) {
            assert!(
                w[1] > w[0],
                "resistance must increase away from sink: {r:?}"
            );
        }
    }

    #[test]
    fn resistance_scales_inversely_with_area() {
        let m = model(2);
        let r1 = m.cell_resistance(0.5e-3, 0.5e-3, 0, 1.0e-12);
        let r2 = m.cell_resistance(0.5e-3, 0.5e-3, 0, 2.0e-12);
        assert!((r1 / r2 - 2.0).abs() < 1e-9, "R ∝ 1/A");
    }

    #[test]
    fn downward_path_dominates() {
        let m = model(4);
        let a = 25.0e-12;
        let full = m.cell_resistance(0.5e-3, 0.5e-3, 0, a);
        let down = m.downward_resistance(0, a);
        // Parallel combination is below the downward path but within ~50%:
        // the sink path carries almost all heat.
        assert!(full < down);
        assert!(full > 0.4 * down, "full={full}, down={down}");
    }

    #[test]
    fn downward_matches_hand_computation() {
        let m = model(1);
        let a = 1.0e-10;
        let stack = m.stack();
        let through_stack = stack.layer_center_z(0) - stack.substrate_thickness;
        let expected = through_stack / (10.2 * a) + 500.0e-6 / (150.0 * a) + 1.0 / (1.0e6 * a);
        assert!((m.downward_resistance(0, a) - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn layer_position_changes_resistance_substantially() {
        // The device stack's low conductivity must make the per-layer
        // resistance step meaningful — the mechanism behind the paper's
        // thermal placement gains.
        let m = model(4);
        let a = 5.0e-12;
        let r0 = m.downward_resistance(0, a);
        let r3 = m.downward_resistance(3, a);
        assert!(
            (r3 - r0) / r0 > 0.2,
            "top layer R ({r3}) must exceed bottom ({r0}) by >20%"
        );
    }

    #[test]
    fn vertical_profile_interpolates_layers() {
        let m = model(4);
        let a = 25.0e-12;
        let p = m.vertical_profile(a);
        assert!(p.slope > 0.0);
        for layer in 0..4 {
            let z = m.stack().layer_center_z(layer);
            let direct = m.cell_resistance(0.5e-3, 0.5e-3, layer, a);
            let fitted = p.at(z);
            let err = (direct - fitted).abs() / direct;
            assert!(err < 0.05, "layer {layer}: direct {direct}, fit {fitted}");
        }
    }

    #[test]
    fn single_layer_profile_has_conduction_slope() {
        let m = model(1);
        let a = 25.0e-12;
        let p = m.vertical_profile(a);
        let expected = 1.0 / (10.2 * a);
        assert!((p.slope - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn rejects_bad_footprint() {
        let err = ResistanceModel::new(LayerStack::mitll_0_18um(2), 0.0, 1.0).unwrap_err();
        assert!(err.to_string().contains("chip width"));
    }

    #[test]
    fn center_cooler_than_corner_is_false_for_sink_dominated() {
        // With a strong bottom sink, lateral position barely matters.
        let m = model(2);
        let a = 25.0e-12;
        let center = m.cell_resistance(0.5e-3, 0.5e-3, 0, a);
        let corner = m.cell_resistance(1.0e-5, 1.0e-5, 0, a);
        assert!((center - corner).abs() / center < 0.05);
    }
}
