//! Geometric multigrid V-cycle preconditioner for the thermal CG solve.
//!
//! The conductance grid is *semi-coarsened*: each level halves the lateral
//! resolution (`nx`, `ny` via ceiling division) and keeps every node layer,
//! because the stack is strongly anisotropic — vertical conductances exceed
//! lateral ones by an order of magnitude or more, so z-coupled errors must
//! be handled by the smoother, not the hierarchy. Coarse operators are
//! *rediscretized* from the physical layer stack at each resolution (not
//! Galerkin products), which keeps them SPD, 7-point, and exactly
//! representable by the same [`StencilOp`] the fine grid uses.
//!
//! **Smoother** — z-line red–black Gauss–Seidel: grid columns are colored
//! by `(i + j)` parity and each column's vertical tridiagonal system is
//! solved exactly (Thomas algorithm) with its lateral neighbors frozen.
//! Line relaxation in z is what makes the smoother robust under the
//! anisotropy; red–black ordering makes it parallel *and* deterministic —
//! same-color columns touch disjoint unknowns and read only opposite-color
//! values, so the result is bitwise independent of thread count.
//!
//! **Transfers** — cell-centered bilinear prolongation in x/y (identity in
//! z), and restriction exactly its transpose (both derive their weights
//! from one shared 1-D stencil), so the V-cycle is a symmetric operator.
//! Residual restriction therefore *sums* fine-cell residuals into coarse
//! cells, which matches the rediscretized operators: coarse conductances
//! scale with coarse cell areas, so summed power over larger cells yields
//! corrections with the correct temperature scale.
//!
//! **Coarsest level** — an exact dense Cholesky solve when the level is
//! small enough, otherwise a fixed number of symmetric smoothing sweeps.
//! Either way the cycle stays a fixed symmetric positive-definite linear
//! operator, which is what CG requires of its preconditioner: the V-cycle
//! starts from a zero initial guess at every level on every application.
//!
//! The hierarchy is built once per [`ThermalSolveContext`]
//! (crate::ThermalSolveContext) and reused warm across solves. If the
//! geometry cannot be handled (more node layers than the line smoother's
//! stack buffers), [`MgHierarchy::build`] returns `None` and the context
//! degrades to Jacobi preconditioning.

use crate::grid::StencilOp;
use crate::LayerStack;
use tvp_parallel as parallel;

/// Upper bound on node layers (device layers + substrate) supported by the
/// fixed stack buffers in the z-line smoother. Far above any realistic 3D
/// stack; beyond it multigrid setup reports failure and the solver falls
/// back to Jacobi preconditioning.
pub(crate) const MAX_NZ: usize = 64;

/// Stop coarsening once the lateral grid is this small: the level is then
/// solved exactly instead of smoothed.
const COARSE_LATERAL: usize = 4;

/// Coarsest-level node count up to which a dense Cholesky factorization is
/// built; larger coarsest levels (only reachable via an explicit shallow
/// level cap) fall back to smoothing sweeps.
const MAX_DENSE: usize = 1024;

/// Symmetric smoothing sweeps standing in for the exact solve when the
/// coarsest level is too large to factor densely.
const FALLBACK_SWEEPS: usize = 8;

/// One level of the hierarchy: its rediscretized operator plus solution,
/// right-hand-side, and residual scratch (allocated once at setup, so the
/// V-cycle itself is allocation-free).
#[derive(Clone, PartialEq, Debug)]
struct MgLevel {
    op: StencilOp,
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
}

impl MgLevel {
    fn new(op: StencilOp) -> Self {
        let n = op.len();
        Self {
            op,
            x: vec![0.0; n],
            b: vec![0.0; n],
            r: vec![0.0; n],
        }
    }
}

/// How the coarsest level is solved.
#[derive(Clone, PartialEq, Debug)]
enum CoarseSolve {
    /// Dense Cholesky factor (lower triangle, row-major) of the coarsest
    /// operator — an exact solve.
    Cholesky { l: Vec<f64>, n: usize },
    /// Fixed count of symmetric red–black line sweeps (used when the
    /// coarsest level is too large to factor, or if factorization fails
    /// numerically). Still symmetric positive definite as an operator.
    Sweeps(usize),
}

impl CoarseSolve {
    fn solve(&self, op: &StencilOp, b: &[f64], x: &mut [f64]) {
        match self {
            CoarseSolve::Cholesky { l, n } => {
                // x = A⁻¹ b via  L y = b,  Lᵀ x = y.
                let n = *n;
                for i in 0..n {
                    let mut sum = b[i];
                    for j in 0..i {
                        sum -= l[i * n + j] * x[j];
                    }
                    x[i] = sum / l[i * n + i];
                }
                for i in (0..n).rev() {
                    let mut sum = x[i];
                    for j in i + 1..n {
                        sum -= l[j * n + i] * x[j];
                    }
                    x[i] = sum / l[i * n + i];
                }
            }
            CoarseSolve::Sweeps(count) => {
                x.fill(0.0);
                for _ in 0..*count {
                    smooth(op, b, x, &[0, 1, 1, 0]);
                }
            }
        }
    }
}

/// The assembled multigrid hierarchy: finest level first, coarsest last.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct MgHierarchy {
    levels: Vec<MgLevel>,
    coarse: CoarseSolve,
}

impl MgHierarchy {
    /// Builds the hierarchy for the given fine operator by rediscretizing
    /// the physical stack at successively halved lateral resolutions.
    /// `level_cap = 0` coarsens until the lateral grid reaches
    /// [`COARSE_LATERAL`]; a non-zero cap limits the total number of
    /// levels (minimum one). Returns `None` when the geometry exceeds the
    /// smoother's layer capacity, signalling the caller to fall back to
    /// Jacobi preconditioning.
    pub(crate) fn build(
        stack: &LayerStack,
        layers: Option<&[crate::stack::LayerSpec]>,
        width: f64,
        depth: f64,
        fine: &StencilOp,
        level_cap: usize,
    ) -> Option<Self> {
        if fine.nz > MAX_NZ {
            return None;
        }
        let mut levels = vec![MgLevel::new(fine.clone())];
        loop {
            let last = &levels[levels.len() - 1].op;
            if last.nx.min(last.ny) <= COARSE_LATERAL {
                break;
            }
            if level_cap != 0 && levels.len() >= level_cap {
                break;
            }
            let op = StencilOp::discretize(
                stack,
                layers,
                width,
                depth,
                last.nx.div_ceil(2),
                last.ny.div_ceil(2),
            );
            levels.push(MgLevel::new(op));
        }
        let coarsest = &levels[levels.len() - 1].op;
        let coarse = cholesky(coarsest).unwrap_or(CoarseSolve::Sweeps(FALLBACK_SWEEPS));
        Some(Self { levels, coarse })
    }

    /// Number of levels in the hierarchy (finest included).
    pub(crate) fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Applies one V-cycle to the residual: `z ≈ A⁻¹ r`. A fixed symmetric
    /// positive-definite linear operation — every level starts from a zero
    /// guess, pre-smoothing runs colors red→black and post-smoothing
    /// black→red, and restriction is exactly the transpose of
    /// prolongation.
    pub(crate) fn vcycle(&mut self, r: &[f64], z: &mut [f64]) {
        self.levels[0].b.copy_from_slice(r);
        descend(&mut self.levels, &self.coarse);
        z.copy_from_slice(&self.levels[0].x);
    }
}

/// Recursive V-cycle worker over `levels[0..]` (coarsest last).
fn descend(levels: &mut [MgLevel], coarse: &CoarseSolve) {
    let Some((level, rest)) = levels.split_first_mut() else {
        return;
    };
    if rest.is_empty() {
        coarse.solve(&level.op, &level.b, &mut level.x);
        return;
    }
    // Pre-smooth from zero (required for a fixed linear operator).
    level.x.fill(0.0);
    smooth(&level.op, &level.b, &mut level.x, &[0, 1]);
    // Fine residual r = b − A·x, restricted into the coarse RHS.
    level.op.residual(&level.x, &level.b, &mut level.r);
    restrict(&level.op, &rest[0].op, &level.r, &mut rest[0].b);
    descend(rest, coarse);
    // Coarse-grid correction, then post-smooth in reversed color order.
    prolong(&rest[0].op, &level.op, &rest[0].x, &mut level.x);
    smooth(&level.op, &level.b, &mut level.x, &[1, 0]);
}

/// The shared 1-D transfer stencil: fine cell `i` interpolates from coarse
/// base cell `i / 2` (weight ¾) and the adjacent coarse cell on the side
/// `i`'s center leans toward (weight ¼), clamped to full base weight at
/// the boundary. Used by both prolongation (gather) and restriction
/// (scatter), which makes restriction exactly the transpose of
/// prolongation.
fn stencil_1d(i: usize, nc: usize) -> ((usize, f64), (usize, f64)) {
    let base = i / 2;
    let neighbor = if i.is_multiple_of(2) {
        base.checked_sub(1)
    } else {
        (base + 1 < nc).then_some(base + 1)
    };
    match neighbor {
        Some(nb) => ((base, 0.75), (nb, 0.25)),
        None => ((base, 1.0), (base, 0.0)),
    }
}

/// Restriction `b_c = Pᵀ·r_f`: scatters each fine residual into the coarse
/// cells its prolongation stencil reads from. Serial — a cheap O(n) pass
/// next to the smoother, and scattering in index order keeps it exactly
/// reproducible.
fn restrict(fine: &StencilOp, coarse_op: &StencilOp, r: &[f64], b: &mut [f64]) {
    b.fill(0.0);
    let (nxf, nyf, nz) = (fine.nx, fine.ny, fine.nz);
    let (nxc, nyc) = (coarse_op.nx, coarse_op.ny);
    let plane_f = nxf * nyf;
    let plane_c = nxc * nyc;
    for k in 0..nz {
        for j in 0..nyf {
            let ((jy0, wy0), (jy1, wy1)) = stencil_1d(j, nyc);
            for i in 0..nxf {
                let ((ix0, wx0), (ix1, wx1)) = stencil_1d(i, nxc);
                let v = r[k * plane_f + j * nxf + i];
                let base = k * plane_c;
                b[base + jy0 * nxc + ix0] += wy0 * wx0 * v;
                b[base + jy0 * nxc + ix1] += wy0 * wx1 * v;
                b[base + jy1 * nxc + ix0] += wy1 * wx0 * v;
                b[base + jy1 * nxc + ix1] += wy1 * wx1 * v;
            }
        }
    }
}

/// Prolongation `x_f += P·x_c`: gathers the bilinear interpolation of the
/// coarse correction into each fine node. A pure per-node gather, so it
/// parallelizes chunk-deterministically.
fn prolong(coarse_op: &StencilOp, fine: &StencilOp, xc: &[f64], xf: &mut [f64]) {
    let (nxf, nyf) = (fine.nx, fine.ny);
    let (nxc, nyc) = (coarse_op.nx, coarse_op.ny);
    let plane_f = nxf * nyf;
    let plane_c = nxc * nyc;
    parallel::for_each_chunk_mut_cutoff(
        xf,
        crate::grid::ELEM_MIN_CHUNK,
        crate::grid::SERIAL_CUTOFF,
        |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let m = start + off;
                let k = m / plane_f;
                let rem = m % plane_f;
                let j = rem / nxf;
                let i = rem % nxf;
                let ((jy0, wy0), (jy1, wy1)) = stencil_1d(j, nyc);
                let ((ix0, wx0), (ix1, wx1)) = stencil_1d(i, nxc);
                let base = k * plane_c;
                *slot += wy0 * wx0 * xc[base + jy0 * nxc + ix0]
                    + wy0 * wx1 * xc[base + jy0 * nxc + ix1]
                    + wy1 * wx0 * xc[base + jy1 * nxc + ix0]
                    + wy1 * wx1 * xc[base + jy1 * nxc + ix1];
            }
        },
    );
}

/// Shared-everything pointer for the red–black smoother. Soundness
/// argument for the unsafe accesses: within one color pass, the columns
/// being written form a disjoint set (one writer each — a column is
/// processed by exactly one row task), and every *read* of another column
/// is of the opposite color, which no task writes during this pass. So
/// there are no concurrent writes and no read/write overlaps.
struct FieldPtr(*mut f64);
unsafe impl Sync for FieldPtr {}
unsafe impl Send for FieldPtr {}

/// Z-line red–black Gauss–Seidel: for each color in `colors`, every grid
/// column `(i, j)` with `(i + j) % 2 == color` gets its vertical
/// tridiagonal system solved exactly (Thomas algorithm) with lateral
/// neighbors frozen at their current values. Deterministic for any thread
/// count: same-color columns are independent, so execution order cannot
/// change the result.
fn smooth(op: &StencilOp, b: &[f64], x: &mut [f64], colors: &[usize]) {
    let (nx, ny, nz) = (op.nx, op.ny, op.nz);
    debug_assert!(nz <= MAX_NZ);
    let plane = nx * ny;
    let rows_per_chunk = (crate::grid::SERIAL_CUTOFF / (nx * nz).max(1)).max(1);
    let ptr = FieldPtr(x.as_mut_ptr());
    let ptr = &ptr;
    for &color in colors {
        // One pass per color; rows are chunked across the pool. `x` is
        // accessed only through the raw pointer inside the pass (see
        // `FieldPtr` for the aliasing argument).
        parallel::map_chunks(ny, rows_per_chunk, |rows| {
            let t = ptr.0;
            // Thomas-algorithm scratch, fixed-capacity (nz ≤ MAX_NZ).
            let mut cp = [0.0f64; MAX_NZ];
            let mut dp = [0.0f64; MAX_NZ];
            for j in rows {
                let i_first = (color + j) % 2;
                let mut i = i_first;
                while i < nx {
                    let col = j * nx + i;
                    // Forward elimination over the column's layers.
                    for k in 0..nz {
                        let m = k * plane + col;
                        // RHS: b plus lateral neighbor terms at frozen values.
                        let mut rhs = b[m];
                        unsafe {
                            if i + 1 < nx {
                                rhs += op.gx[k] * *t.add(m + 1);
                            }
                            if i > 0 {
                                rhs += op.gx[k] * *t.add(m - 1);
                            }
                            if j + 1 < ny {
                                rhs += op.gy[k] * *t.add(m + nx);
                            }
                            if j > 0 {
                                rhs += op.gy[k] * *t.add(m - nx);
                            }
                        }
                        let diag = op.diag[m];
                        if k == 0 {
                            cp[0] = if nz > 1 { -op.gz[0] / diag } else { 0.0 };
                            dp[0] = rhs / diag;
                        } else {
                            let sub = -op.gz[k - 1];
                            let denom = diag - sub * cp[k - 1];
                            cp[k] = if k + 1 < nz { -op.gz[k] / denom } else { 0.0 };
                            dp[k] = (rhs - sub * dp[k - 1]) / denom;
                        }
                    }
                    // Back substitution writes the column in place.
                    unsafe {
                        let mut prev = dp[nz - 1];
                        *t.add((nz - 1) * plane + col) = prev;
                        for k in (0..nz - 1).rev() {
                            prev = dp[k] - cp[k] * prev;
                            *t.add(k * plane + col) = prev;
                        }
                    }
                    i += 2;
                }
            }
        });
    }
}

/// Dense Cholesky factorization of the coarsest operator, built by
/// applying the stencil to basis vectors. Returns `None` when the level is
/// too large to factor or the factorization hits a non-positive pivot
/// (numerically impossible for a well-formed SPD conductance matrix, but
/// handled rather than trusted).
fn cholesky(op: &StencilOp) -> Option<CoarseSolve> {
    let n = op.len();
    if n > MAX_DENSE {
        return None;
    }
    // Assemble A column by column; A is symmetric so row-major storage of
    // columns is equivalent.
    let mut a = vec![0.0; n * n];
    let mut e = vec![0.0; n];
    let mut col = vec![0.0; n];
    for jj in 0..n {
        e[jj] = 1.0;
        op.apply(&e, &mut col);
        e[jj] = 0.0;
        for ii in 0..n {
            a[ii * n + jj] = col[ii];
        }
    }
    // In-place lower-triangular Cholesky.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if !(sum.is_finite() && sum > 0.0) {
                    return None;
                }
                a[i * n + i] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    Some(CoarseSolve::Cholesky { l: a, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(layers: usize, nx: usize, ny: usize) -> StencilOp {
        let stack = LayerStack::mitll_0_18um(layers);
        StencilOp::discretize(&stack, None, 1.0e-3, 1.0e-3, nx, ny)
    }

    #[test]
    fn hierarchy_coarsens_to_the_lateral_floor() {
        let stack = LayerStack::mitll_0_18um(4);
        let fine = op(4, 64, 64);
        let mg = MgHierarchy::build(&stack, None, 1.0e-3, 1.0e-3, &fine, 0).unwrap();
        // 64 → 32 → 16 → 8 → 4.
        assert_eq!(mg.num_levels(), 5);
        let coarsest = &mg.levels[mg.num_levels() - 1].op;
        assert_eq!((coarsest.nx, coarsest.ny), (4, 4));
        assert!(matches!(mg.coarse, CoarseSolve::Cholesky { .. }));
    }

    #[test]
    fn level_cap_limits_depth_and_zero_means_auto() {
        let stack = LayerStack::mitll_0_18um(2);
        let fine = op(2, 32, 32);
        let capped = MgHierarchy::build(&stack, None, 1.0e-3, 1.0e-3, &fine, 2).unwrap();
        assert_eq!(capped.num_levels(), 2);
        let auto = MgHierarchy::build(&stack, None, 1.0e-3, 1.0e-3, &fine, 0).unwrap();
        assert_eq!(auto.num_levels(), 4); // 32 → 16 → 8 → 4
    }

    #[test]
    fn too_many_layers_reports_unbuildable() {
        // MAX_NZ node layers means MAX_NZ device layers + substrate > MAX_NZ.
        let stack = LayerStack::mitll_0_18um(MAX_NZ);
        let fine = StencilOp::discretize(&stack, None, 1.0e-3, 1.0e-3, 8, 8);
        assert!(MgHierarchy::build(&stack, None, 1.0e-3, 1.0e-3, &fine, 0).is_none());
    }

    #[test]
    fn restriction_is_the_transpose_of_prolongation() {
        // ⟨P·xc, yf⟩ must equal ⟨xc, Pᵀ·yf⟩ for arbitrary vectors — the
        // property that keeps the V-cycle symmetric for CG.
        let stack = LayerStack::mitll_0_18um(2);
        let fine = op(2, 9, 7); // odd sizes exercise the clamped stencil
        let coarse_op = StencilOp::discretize(
            &stack,
            None,
            1.0e-3,
            1.0e-3,
            fine.nx.div_ceil(2),
            fine.ny.div_ceil(2),
        );
        let nf = fine.len();
        let nc = coarse_op.len();
        // Deterministic pseudo-random fill.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let xc: Vec<f64> = (0..nc).map(|_| next()).collect();
        let yf: Vec<f64> = (0..nf).map(|_| next()).collect();

        let mut pxc = vec![0.0; nf];
        prolong(&coarse_op, &fine, &xc, &mut pxc);
        let mut pty = vec![0.0; nc];
        restrict(&fine, &coarse_op, &yf, &mut pty);

        let lhs: f64 = pxc.iter().zip(&yf).map(|(a, b)| a * b).sum();
        let rhs: f64 = xc.iter().zip(&pty).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0),
            "⟨P xc, yf⟩ = {lhs} but ⟨xc, Pᵀ yf⟩ = {rhs}"
        );
    }

    #[test]
    fn smoother_error_contracts_monotonically_in_energy_norm() {
        // Gauss–Seidel relaxation (and line variants) reduce the error's
        // A-norm monotonically — the theorem the smoother leans on. (The
        // residual 2-norm is *not* monotone for GS, so that's not what we
        // test.) Manufacture a known solution so the error is computable.
        let fine = op(4, 16, 16);
        let n = fine.len();
        let x_true: Vec<f64> = (0..n)
            .map(|i| 1.0 + (i as f64 * 0.61).sin() * 0.3)
            .collect();
        let mut b = vec![0.0; n];
        fine.apply(&x_true, &mut b);

        let a_norm = |x: &[f64]| {
            let e: Vec<f64> = x.iter().zip(&x_true).map(|(a, t)| a - t).collect();
            let mut ae = vec![0.0; n];
            fine.apply(&e, &mut ae);
            e.iter().zip(&ae).map(|(a, c)| a * c).sum::<f64>().sqrt()
        };
        let mut x = vec![0.0; n];
        let mut last = a_norm(&x);
        for sweep in 0..8 {
            smooth(&fine, &b, &mut x, &[0, 1, 1, 0]);
            let now = a_norm(&x);
            assert!(
                now < last,
                "sweep {sweep}: error A-norm rose {last} → {now}"
            );
            last = now;
        }
    }

    #[test]
    fn smoother_is_bitwise_identical_across_thread_counts() {
        let fine = op(8, 48, 48);
        let n = fine.len();
        let b: Vec<f64> = (0..n)
            .map(|i| 1.0e-3 * (1.0 + (i % 13) as f64 * 0.21))
            .collect();
        let run = |threads: usize| {
            tvp_parallel::with_threads(threads, || {
                let mut x = vec![0.0; n];
                for _ in 0..3 {
                    smooth(&fine, &b, &mut x, &[0, 1, 1, 0]);
                }
                x
            })
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            let threaded = run(threads);
            for (s, p) in serial.iter().zip(&threaded) {
                assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn vcycle_solves_better_than_one_jacobi_sweep() {
        // The whole point of the preconditioner: one V-cycle applied to
        // the raw right-hand side must land much closer to the solution
        // than one diagonal scaling does, and must contract the residual
        // well below where it started.
        let stack = LayerStack::mitll_0_18um(4);
        let fine = op(4, 32, 32);
        let n = fine.len();
        let mut mg = MgHierarchy::build(&stack, None, 1.0e-3, 1.0e-3, &fine, 0).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0e-3 * (1.0 + (i % 5) as f64)).collect();
        let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();

        let mut z = vec![0.0; n];
        mg.vcycle(&b, &mut z);
        let mut r = vec![0.0; n];
        fine.residual(&z, &b, &mut r);
        let mg_res: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();

        let zj: Vec<f64> = (0..n).map(|i| b[i] / fine.diag[i]).collect();
        fine.residual(&zj, &b, &mut r);
        let jac_res: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();

        assert!(
            mg_res < 0.3 * b_norm,
            "one V-cycle left {mg_res} of ‖b‖ = {b_norm}"
        );
        assert!(
            mg_res * 4.0 < jac_res,
            "V-cycle residual {mg_res} not ≪ Jacobi residual {jac_res}"
        );
    }

    #[test]
    fn cholesky_solves_the_coarsest_level_exactly() {
        let coarse_op = op(3, 4, 4);
        let n = coarse_op.len();
        let solver = cholesky(&coarse_op).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = vec![0.0; n];
        solver.solve(&coarse_op, &b, &mut x);
        let mut r = vec![0.0; n];
        coarse_op.residual(&x, &b, &mut r);
        let res: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(res <= 1e-12 * b_norm, "direct solve residual {res}");
    }
}
