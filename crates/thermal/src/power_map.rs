//! Binned power density input for the thermal simulator.

/// A 3D grid of power values (watts): `nx × ny` bins per device layer,
/// `nz` device layers. Bin `(0, 0, 0)` is the chip corner at the origin on
/// the layer closest to the heat sink.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerMap {
    nx: usize,
    ny: usize,
    nz: usize,
    values: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "power map dimensions must be positive"
        );
        Self {
            nx,
            ny,
            nz,
            values: vec![0.0; nx * ny * nz],
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Power in bin `(i, j, k)`, watts.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.values[self.index(i, j, k)]
    }

    /// Adds `watts` to bin `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add(&mut self, i: usize, j: usize, k: usize, watts: f64) {
        let idx = self.index(i, j, k);
        self.values[idx] += watts;
    }

    /// Deposits `watts` at physical position `(x, y)` on device layer
    /// `layer`, for a chip footprint of `width × depth` meters. Positions
    /// outside the footprint clamp to the boundary bins.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= nz`.
    pub fn deposit(&mut self, x: f64, y: f64, layer: usize, watts: f64, width: f64, depth: f64) {
        let i = ((x / width * self.nx as f64).floor() as isize).clamp(0, self.nx as isize - 1);
        let j = ((y / depth * self.ny as f64).floor() as isize).clamp(0, self.ny as isize - 1);
        self.add(i as usize, j as usize, layer, watts);
    }

    /// Total power in the map, watts.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Raw values in `(k, j, i)` row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values in `(k, j, i)` row-major order, for callers that
    /// need to post-process deposits (e.g. sanitizing non-finite entries
    /// before a solve).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Zeroes every non-finite (NaN/∞) entry and returns how many were
    /// replaced. A power map built from untrusted activities or injected
    /// faults may carry NaN deposits that would poison the linear solve.
    pub fn sanitize(&mut self) -> usize {
        let mut replaced = 0;
        for v in &mut self.values {
            if !v.is_finite() {
                *v = 0.0;
                replaced += 1;
            }
        }
        replaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_into_correct_bin() {
        let mut p = PowerMap::new(4, 4, 2);
        p.deposit(0.9, 0.1, 1, 2.0, 1.0, 1.0);
        assert_eq!(p.get(3, 0, 1), 2.0);
        assert_eq!(p.total(), 2.0);
    }

    #[test]
    fn clamps_out_of_range_positions() {
        let mut p = PowerMap::new(4, 4, 1);
        p.deposit(-1.0, 5.0, 0, 1.0, 1.0, 1.0);
        assert_eq!(p.get(0, 3, 0), 1.0);
        p.deposit(1.0, 1.0, 0, 1.0, 1.0, 1.0); // exactly on the far edge
        assert_eq!(p.get(3, 3, 0), 1.0);
    }

    #[test]
    fn accumulates() {
        let mut p = PowerMap::new(2, 2, 1);
        p.add(1, 1, 0, 0.5);
        p.add(1, 1, 0, 0.25);
        assert_eq!(p.get(1, 1, 0), 0.75);
        assert_eq!(p.total(), 0.75);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = PowerMap::new(0, 4, 1);
    }
}
