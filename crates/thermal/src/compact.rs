//! Compact analytical thermal model: closed-form heat-spread superposition.
//!
//! This is the [`ThermalTier::Compact`] oracle — a port of the
//! ATPlace2.5D superposition kernel. Each power bin contributes a
//! temperature rise shaped by the closed-form rectangle heat-spread
//! function [`f_kernel`] (the analytical surface integral of a Gaussian
//! point-spread over a rectangular source), scaled by a per-layer-pair
//! amplitude. The full field is a discrete convolution of the power map
//! with one precomputed `(2·nx−1) × (2·ny−1)` kernel table, so an entire
//! field evaluation costs `(L·nx·ny)²`-ish multiply-adds (microseconds at
//! placement resolutions) and an incremental point-source update costs
//! `L·nx·ny` — cheap enough to price individual legalization moves.
//!
//! Two deliberate departures from the exemplar:
//!
//! * **No additive bias term.** The exemplar adds a fitted constant `B`
//!   per block; dropping it makes the model exactly linear in power
//!   (superposition holds bit for bit, and an all-zero map returns
//!   ambient), which the incremental [`CompactModel::add_point_source`]
//!   update relies on.
//! * **Shape and amplitude are fitted per layer pair** (`L × L` matrices
//!   of `a`, `spread`, and amplitude in K/W) instead of one shared
//!   scalar set: the same-layer response of a heat-sunk stack is sharply
//!   peaked while cross-layer responses are wide and smooth, and a
//!   single shared kernel shape cannot fit both.
//!
//! Parameters come from [`CompactModel::fit`]: unit-impulse power maps are
//! solved by the finite-volume multigrid solver (the ground truth), and
//! each layer pair independently scans a small (`a`, `spread`) candidate
//! grid with a closed-form least-squares amplitude per candidate, keeping
//! the combination minimizing that pair's max error against those solves.
//! The achieved error is reported in [`CompactFitReport`] and the
//! documented contract lives in [`crate::compact_params`].

use crate::oracle::{OracleStats, ThermalOracle, ThermalTier};
use crate::{PowerMap, Preconditioner, TemperatureField, ThermalError, ThermalSimulator};

/// The ATPlace2.5D rectangle heat-spread function.
///
/// `F(a, b, c)` is the closed-form integral of `erfc`-shaped lateral
/// spreading over a rectangular source corner: `a` is the dimensionless
/// vertical-depth parameter and `b`, `c` the lateral corner offsets in
/// units of the spread length. It is odd in `b` and in `c`
/// (`F(a, -b, c) = -F(a, b, c)`), which is what makes the four-corner sum
/// in the kernel table decay to zero far from the source.
///
/// Requires `a > 0`; the other arguments may take any finite value.
pub fn f_kernel(a: f64, b: f64, c: f64) -> f64 {
    let delta = (a * a + b * b + c * c).sqrt();
    let term1 = b * ((c + delta) / (a * a + b * b).sqrt()).ln();
    let term2 = c * ((b + delta) / (a * a + c * c).sqrt()).ln();
    let term3 = a * ((b * c) / (a * delta)).atan();
    (2.0 / std::f64::consts::PI.sqrt()) * (term1 + term2 - term3)
}

/// Fitted shape and amplitude parameters of the compact model.
///
/// Valid for one chip geometry and layer stack — the amplitudes fold in
/// the bin area, stack materials, and heat-sink boundary, so a model fit
/// at one `(footprint, grid, stack)` must not be reused for another.
/// All per-pair vectors are `L × L` row-major, indexed
/// `[source_layer * L + eval_layer]`. Each (source, eval) layer pair gets
/// its own kernel shape: the same-layer response of a heat-sunk stack is
/// sharply peaked while cross-layer responses (spreading through the
/// substrate) are wide and smooth — one shared shape cannot fit both.
#[derive(Clone, PartialEq, Debug)]
pub struct CompactParams {
    /// Number of device layers `L`.
    pub num_layers: usize,
    /// Per-pair dimensionless vertical-depth parameter of [`f_kernel`].
    pub a: Vec<f64>,
    /// Per-pair lateral heat-spread length, meters (normalizes corner
    /// offsets).
    pub spread: Vec<f64>,
    /// Per-pair amplitude of the smooth spread kernel, K/W.
    pub amplitude: Vec<f64>,
    /// Per-pair local self-heating term, K/W, added to the source bin
    /// only. The impulse response of a heat-sunk stack is a sharp in-bin
    /// peak on top of a smooth shoulder; the delta term absorbs the peak
    /// so the smooth kernel only has to fit the shoulder.
    pub local: Vec<f64>,
}

impl CompactParams {
    /// Validates shape parameters and the matrix dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> crate::Result<()> {
        if self.num_layers == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "compact.num_layers",
                value: 0.0,
            });
        }
        let pairs = self.num_layers * self.num_layers;
        for (name, vec) in [
            ("compact.a (must be num_layers²)", &self.a),
            ("compact.spread (must be num_layers²)", &self.spread),
            ("compact.amplitude (must be num_layers²)", &self.amplitude),
            ("compact.local (must be num_layers²)", &self.local),
        ] {
            if vec.len() != pairs {
                return Err(ThermalError::InvalidParameter {
                    name,
                    value: vec.len() as f64,
                });
            }
        }
        for (name, vec) in [("compact.a", &self.a), ("compact.spread", &self.spread)] {
            for &value in vec {
                if !(value.is_finite() && value > 0.0) {
                    return Err(ThermalError::InvalidParameter { name, value });
                }
            }
        }
        for (name, vec) in [
            ("compact.amplitude", &self.amplitude),
            ("compact.local", &self.local),
        ] {
            for &value in vec {
                if !value.is_finite() {
                    return Err(ThermalError::InvalidParameter { name, value });
                }
            }
        }
        Ok(())
    }
}

/// Fit quality record returned next to the fitted [`CompactParams`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CompactFitReport {
    /// Max |compact − multigrid| over all fit impulses and nodes,
    /// relative to the peak multigrid temperature rise.
    pub max_rel_error: f64,
    /// Mean |compact − multigrid| over the same set, relative to the peak
    /// rise.
    pub avg_rel_error: f64,
    /// Ground-truth multigrid solves performed by the fit.
    pub solves: usize,
}

/// The compact-tier thermal oracle: a fitted superposition model over the
/// same power-map grid as the finite-volume solver.
#[derive(Clone, PartialEq, Debug)]
pub struct CompactModel {
    params: CompactParams,
    width: f64,
    depth: f64,
    nx: usize,
    ny: usize,
    ambient: f64,
    /// One `(2·ny−1) × (2·nx−1)` heat-spread table per layer pair,
    /// concatenated in pair order; within a table the index is
    /// `[(dj + ny − 1) * (2·nx − 1) + (di + nx − 1)]` for bin-center
    /// offsets `di ∈ [-(nx-1), nx-1]`, `dj ∈ [-(ny-1), ny-1]`, and the
    /// per-pair amplitude is already folded in.
    kernels: Vec<f64>,
}

fn build_kernel(a: f64, spread: f64, width: f64, depth: f64, nx: usize, ny: usize) -> Vec<f64> {
    let bin_w = width / nx as f64;
    let bin_h = depth / ny as f64;
    let mut kernel = Vec::with_capacity((2 * nx - 1) * (2 * ny - 1));
    for dj in -(ny as isize - 1)..=(ny as isize - 1) {
        let dy = dj as f64 * bin_h;
        for di in -(nx as isize - 1)..=(nx as isize - 1) {
            let dx = di as f64 * bin_w;
            let mut sum = 0.0;
            for sx in [-1.0, 1.0] {
                for sy in [-1.0, 1.0] {
                    let b = (bin_w / 2.0 - sx * dx) / spread;
                    let c = (bin_h / 2.0 - sy * dy) / spread;
                    sum += f_kernel(a, b, c);
                }
            }
            kernel.push(sum);
        }
    }
    kernel
}

impl CompactModel {
    /// Builds a model from already-fitted parameters for a chip of
    /// `width × depth` meters evaluated on an `nx × ny` lateral grid, with
    /// rises measured above `ambient` °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for invalid parameters
    /// or degenerate geometry.
    pub fn new(
        params: CompactParams,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
        ambient: f64,
    ) -> crate::Result<Self> {
        params.validate()?;
        for (name, value) in [("compact.width", width), ("compact.depth", depth)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "compact.grid",
                value: 0.0,
            });
        }
        let pairs = params.num_layers * params.num_layers;
        let table = (2 * nx - 1) * (2 * ny - 1);
        let center = (ny - 1) * (2 * nx - 1) + (nx - 1);
        let mut kernels = Vec::with_capacity(pairs * table);
        for pair in 0..pairs {
            let base = build_kernel(params.a[pair], params.spread[pair], width, depth, nx, ny);
            let amp = params.amplitude[pair];
            kernels.extend(base.iter().map(|&g| amp * g));
            // The local self-heating delta lives at zero offset.
            kernels[pair * table + center] += params.local[pair];
        }
        Ok(Self {
            params,
            width,
            depth,
            nx,
            ny,
            ambient,
            kernels,
        })
    }

    /// Fits compact parameters against `sim` (the multigrid ground truth)
    /// and returns the ready model plus the fit report.
    ///
    /// Unit-impulse power maps (1 W in a single bin, at the grid center
    /// and at a quarter position, per source layer) are solved by `sim`
    /// with a fit-private solve context — the caller's warm-start chains
    /// are untouched. Each layer pair independently scans a small
    /// `(a, spread)` candidate grid, with the amplitude given by
    /// closed-form least squares per candidate, and keeps the candidate
    /// with that pair's smallest max error.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from the ground-truth solves.
    pub fn fit(
        sim: &ThermalSimulator,
        precond: Preconditioner,
    ) -> crate::Result<(Self, CompactFitReport)> {
        let (nx, ny, layers) = sim.grid_dims();
        let (width, depth) = sim.footprint();
        let ambient = sim.stack().heat_sink.ambient;

        let mut positions = vec![(nx / 2, ny / 2)];
        let quarter = (nx / 4, ny / 4);
        if quarter != positions[0] {
            positions.push(quarter);
        }

        // Ground truth: one unit impulse per (source layer, position).
        let mut context = sim.context_with(precond);
        let mut rises: Vec<Vec<f64>> = Vec::with_capacity(layers * positions.len());
        for k in 0..layers {
            for &(pi, pj) in &positions {
                let mut p = PowerMap::new(nx, ny, layers);
                p.add(pi, pj, k, 1.0);
                let field = sim.solve_with(&p, &mut context)?;
                let mut rise = vec![0.0; layers * ny * nx];
                for l in 0..layers {
                    for j in 0..ny {
                        for i in 0..nx {
                            rise[(l * ny + j) * nx + i] = field.at(i, j, l) - ambient;
                        }
                    }
                }
                rises.push(rise);
            }
        }
        let solves = rises.len();
        let peak = rises
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);

        let a_grid = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2];
        let spread_grid = [
            width / 64.0,
            width / 48.0,
            width / 32.0,
            width / 24.0,
            width / 16.0,
            width / 12.0,
            width / 8.0,
            width / 6.0,
            width / 4.0,
            width / 3.0,
            width / 2.0,
            width * 0.75,
            width,
            width * 1.5,
        ];
        let stride = 2 * nx - 1;
        // Candidate kernel shapes are shared by every layer pair; each
        // pair independently picks the (a, spread) minimizing its max
        // error, with the amplitude given by closed-form least squares
        // A = Σ⟨g, T⟩ / Σ⟨g, g⟩ over the fit impulses.
        let mut candidates: Vec<(f64, f64, Vec<f64>)> = Vec::new();
        for &a in &a_grid {
            for &spread in &spread_grid {
                candidates.push((a, spread, build_kernel(a, spread, width, depth, nx, ny)));
            }
        }
        let pairs = layers * layers;
        let mut fit_a = vec![0.0; pairs];
        let mut fit_spread = vec![0.0; pairs];
        let mut fit_amp = vec![0.0; pairs];
        let mut fit_local = vec![0.0; pairs];
        let mut max_rel_error = 0.0_f64;
        let mut err_sum = 0.0;
        let mut err_count = 0usize;
        for k in 0..layers {
            for l in 0..layers {
                // a, spread, amp, local, max, sum — seeded with an
                // infinite error so the first candidate always wins.
                let mut best = (1.0, width, 0.0, 0.0, f64::INFINITY, f64::INFINITY);
                for (a, spread, kernel) in &candidates {
                    let g_at = |pi: usize, pj: usize, i: usize, j: usize| {
                        let row = (j as isize - pj as isize + ny as isize - 1) as usize;
                        let col = (i as isize - pi as isize + nx as isize - 1) as usize;
                        kernel[row * stride + col]
                    };
                    // Joint least squares over the smooth kernel g and the
                    // source-bin delta d: [⟨g,g⟩ ⟨g,d⟩; ⟨g,d⟩ ⟨d,d⟩]
                    // [amp; local] = [⟨g,T⟩; ⟨d,T⟩].
                    let g_center = kernel[(ny - 1) * stride + (nx - 1)];
                    let mut gg = 0.0;
                    let mut gt = 0.0;
                    let mut dt = 0.0;
                    for (pos_idx, &(pi, pj)) in positions.iter().enumerate() {
                        let rise = &rises[k * positions.len() + pos_idx];
                        for j in 0..ny {
                            for i in 0..nx {
                                let g = g_at(pi, pj, i, j);
                                gg += g * g;
                                gt += g * rise[(l * ny + j) * nx + i];
                            }
                        }
                        dt += rise[(l * ny + pj) * nx + pi];
                    }
                    let gd = positions.len() as f64 * g_center;
                    let dd = positions.len() as f64;
                    let det = gg * dd - gd * gd;
                    let (amp, local) = if det.abs() > 1e-9 * gg * dd {
                        ((gt * dd - dt * gd) / det, (gg * dt - gd * gt) / det)
                    } else if gg > 0.0 {
                        // Kernel is collinear with the delta; single term.
                        (gt / gg, 0.0)
                    } else {
                        (0.0, 0.0)
                    };
                    let mut max_err = 0.0_f64;
                    let mut sum_err = 0.0;
                    for (pos_idx, &(pi, pj)) in positions.iter().enumerate() {
                        let rise = &rises[k * positions.len() + pos_idx];
                        for j in 0..ny {
                            for i in 0..nx {
                                let mut model = amp * g_at(pi, pj, i, j);
                                if i == pi && j == pj {
                                    model += local;
                                }
                                let err = (model - rise[(l * ny + j) * nx + i]).abs();
                                max_err = max_err.max(err);
                                sum_err += err;
                            }
                        }
                    }
                    if max_err < best.4 {
                        best = (*a, *spread, amp, local, max_err, sum_err);
                    }
                }
                let (a, spread, amp, local, max_err, sum_err) = best;
                let pair = k * layers + l;
                fit_a[pair] = a;
                fit_spread[pair] = spread;
                fit_amp[pair] = amp;
                fit_local[pair] = local;
                max_rel_error = max_rel_error.max(max_err / peak);
                err_sum += sum_err;
                err_count += positions.len() * ny * nx;
            }
        }
        let params = CompactParams {
            num_layers: layers,
            a: fit_a,
            spread: fit_spread,
            amplitude: fit_amp,
            local: fit_local,
        };
        let report = CompactFitReport {
            max_rel_error,
            avg_rel_error: err_sum / err_count as f64 / peak,
            solves,
        };
        let model = Self::new(params, width, depth, nx, ny, ambient)?;
        Ok((model, report))
    }

    /// The fitted parameters.
    pub fn params(&self) -> &CompactParams {
        &self.params
    }

    /// Evaluates the full temperature field for `power`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] when `power` was built at
    /// different dimensions.
    pub fn evaluate(&self, power: &PowerMap) -> crate::Result<TemperatureField> {
        let layers = self.params.num_layers;
        let expected = (self.nx, self.ny, layers);
        if power.dims() != expected {
            return Err(ThermalError::GridMismatch {
                expected,
                found: power.dims(),
            });
        }
        let stride = 2 * self.nx - 1;
        let mut values = vec![self.ambient; layers * self.ny * self.nx];
        let p = power.values();
        for k in 0..layers {
            for sj in 0..self.ny {
                for si in 0..self.nx {
                    let watts = p[(k * self.ny + sj) * self.nx + si];
                    if watts == 0.0 {
                        continue;
                    }
                    self.accumulate(&mut values, si, sj, k, watts, stride);
                }
            }
        }
        Ok(TemperatureField::from_values(
            self.nx,
            self.ny,
            layers,
            self.ambient,
            values,
        ))
    }

    /// Incrementally adds one point source's contribution to an existing
    /// field produced by this model: `watts` deposited at physical
    /// position `(x, y)` on device layer `layer` (same bin addressing as
    /// [`PowerMap::deposit`], positions clamp to the footprint). Pass
    /// negative `watts` to remove a source. Exact superposition linearity
    /// makes the update equivalent to re-evaluating the full map.
    ///
    /// # Panics
    ///
    /// Panics if `field` has different dimensions or `layer` is out of
    /// range.
    pub fn add_point_source(
        &self,
        field: &mut TemperatureField,
        x: f64,
        y: f64,
        layer: usize,
        watts: f64,
    ) {
        let layers = self.params.num_layers;
        assert_eq!(
            field.dims(),
            (self.nx, self.ny, layers),
            "field does not belong to this compact model"
        );
        assert!(layer < layers, "layer {layer} out of range");
        let si =
            ((x / self.width * self.nx as f64).floor() as isize).clamp(0, self.nx as isize - 1);
        let sj =
            ((y / self.depth * self.ny as f64).floor() as isize).clamp(0, self.ny as isize - 1);
        let stride = 2 * self.nx - 1;
        self.accumulate(
            field.values_mut(),
            si as usize,
            sj as usize,
            layer,
            watts,
            stride,
        );
    }

    fn accumulate(
        &self,
        values: &mut [f64],
        si: usize,
        sj: usize,
        source_layer: usize,
        watts: f64,
        stride: usize,
    ) {
        let layers = self.params.num_layers;
        let table = stride * (2 * self.ny - 1);
        for l in 0..layers {
            let kernel = &self.kernels[(source_layer * layers + l) * table..][..table];
            for j in 0..self.ny {
                let krow = ((j as isize - sj as isize + self.ny as isize - 1) as usize) * stride;
                let kbase = krow + (self.nx - 1 - si);
                let vbase = (l * self.ny + j) * self.nx;
                for i in 0..self.nx {
                    values[vbase + i] += watts * kernel[kbase + i];
                }
            }
        }
    }
}

impl ThermalOracle for CompactModel {
    fn tier(&self) -> ThermalTier {
        ThermalTier::Compact
    }

    fn grid_dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.params.num_layers)
    }

    fn footprint(&self) -> (f64, f64) {
        (self.width, self.depth)
    }

    fn solve(
        &mut self,
        power: &PowerMap,
        _force_fallback: bool,
    ) -> crate::Result<(TemperatureField, OracleStats)> {
        let field = self.evaluate(power)?;
        Ok((field, OracleStats::default()))
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerStack;

    fn canonical_sim() -> ThermalSimulator {
        ThermalSimulator::new(LayerStack::mitll_0_18um(4), 1.0e-3, 1.0e-3, 16, 16).unwrap()
    }

    #[test]
    fn f_kernel_is_odd_in_lateral_arguments() {
        for &(a, b, c) in &[(0.3, 0.7, 1.1), (1.0, -0.2, 0.5), (0.05, 3.0, -2.0)] {
            let f = f_kernel(a, b, c);
            assert!((f_kernel(a, -b, c) + f).abs() < 1e-12 * f.abs().max(1.0));
            assert!((f_kernel(a, b, -c) + f).abs() < 1e-12 * f.abs().max(1.0));
            // Symmetric under swapping the two lateral arguments.
            assert!((f_kernel(a, c, b) - f).abs() < 1e-12 * f.abs().max(1.0));
        }
    }

    #[test]
    fn kernel_sum_decays_monotonically_from_source() {
        let kernel = build_kernel(0.4, 1.0e-4, 1.0e-3, 1.0e-3, 16, 16);
        let stride = 2 * 16 - 1;
        let row = |di: usize| kernel[(16 - 1) * stride + (16 - 1) + di];
        let center = row(0);
        assert!(center > 0.0);
        for di in 1..16 {
            assert!(row(di) < row(di - 1), "kernel must decay with distance");
            assert!(row(di) > 0.0);
        }
        // The four-corner sum's odd symmetry cancels the saturating F
        // terms: 15 bins out the kernel is down to a few percent.
        assert!(row(15) < 0.06 * center);
    }

    #[test]
    fn superposition_is_exact() {
        let (model, _) = CompactModel::fit(&canonical_sim(), Preconditioner::default()).unwrap();
        let mut p1 = PowerMap::new(16, 16, 4);
        p1.add(3, 5, 1, 0.02);
        let mut p2 = PowerMap::new(16, 16, 4);
        p2.add(12, 9, 3, 0.05);
        let mut p12 = PowerMap::new(16, 16, 4);
        p12.add(3, 5, 1, 0.02);
        p12.add(12, 9, 3, 0.05);
        let t1 = model.evaluate(&p1).unwrap();
        let t2 = model.evaluate(&p2).unwrap();
        let t12 = model.evaluate(&p12).unwrap();
        for l in 0..4 {
            for j in 0..16 {
                for i in 0..16 {
                    let sum = t1.at(i, j, l) + t2.at(i, j, l) - t1.ambient();
                    assert!((t12.at(i, j, l) - sum).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn zero_power_returns_ambient() {
        let (model, _) = CompactModel::fit(&canonical_sim(), Preconditioner::default()).unwrap();
        let t = model.evaluate(&PowerMap::new(16, 16, 4)).unwrap();
        assert_eq!(t.max_temperature(), t.ambient());
        assert_eq!(t.average_temperature(), t.ambient());
    }

    #[test]
    fn point_source_update_matches_full_evaluate() {
        let (model, _) = CompactModel::fit(&canonical_sim(), Preconditioner::default()).unwrap();
        let mut p = PowerMap::new(16, 16, 4);
        p.add(2, 2, 0, 0.01);
        let mut field = model.evaluate(&p).unwrap();
        // Move the source to bin (10, 7) on layer 2 incrementally.
        let bin = 1.0e-3 / 16.0;
        model.add_point_source(&mut field, 2.5 * bin, 2.5 * bin, 0, -0.01);
        model.add_point_source(&mut field, 10.5 * bin, 7.5 * bin, 2, 0.01);
        let mut moved = PowerMap::new(16, 16, 4);
        moved.add(10, 7, 2, 0.01);
        let direct = model.evaluate(&moved).unwrap();
        for l in 0..4 {
            for j in 0..16 {
                for i in 0..16 {
                    assert!((field.at(i, j, l) - direct.at(i, j, l)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn fit_report_is_sane() {
        let (model, report) =
            CompactModel::fit(&canonical_sim(), Preconditioner::default()).unwrap();
        assert_eq!(report.solves, 8);
        assert!(report.max_rel_error.is_finite() && report.max_rel_error >= 0.0);
        assert!(report.avg_rel_error <= report.max_rel_error);
        assert!(model.params().validate().is_ok());
        // A fitted model must heat up when power is applied.
        let mut p = PowerMap::new(16, 16, 4);
        p.add(8, 8, 3, 0.1);
        let t = model.evaluate(&p).unwrap();
        assert!(t.max_temperature() > t.ambient());
        eprintln!(
            "fit: max_rel={:.4} avg_rel={:.4}\n  a={:?}\n  spread={:?}\n  amplitude={:?}\n  local={:?}",
            report.max_rel_error,
            report.avg_rel_error,
            model.params().a,
            model.params().spread,
            model.params().amplitude,
            model.params().local
        );
    }

    #[test]
    fn mismatched_power_map_is_rejected() {
        let (model, _) = CompactModel::fit(&canonical_sim(), Preconditioner::default()).unwrap();
        let err = model.evaluate(&PowerMap::new(8, 8, 4)).unwrap_err();
        assert!(matches!(err, ThermalError::GridMismatch { .. }));
    }
}
