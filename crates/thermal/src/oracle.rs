//! Tiered thermal oracles: one trait, three fidelities.
//!
//! The placer needs temperature estimates at wildly different price
//! points: microseconds per query inside legalization move loops,
//! milliseconds at stage boundaries, and full fidelity for the final
//! score. [`ThermalOracle`] abstracts over the implementations so every
//! call site in the placer dispatches through one interface and a
//! per-stage policy picks the model:
//!
//! * [`ThermalTier::FullGrid`] — the finite-volume multigrid-CG solver at
//!   the evaluation resolution ([`GridOracle`] wrapping
//!   [`ThermalSimulator`] + [`ThermalSolveContext`]). Ground truth.
//! * [`ThermalTier::CoarseGrid`] — the same solver at half the lateral
//!   resolution: ~4× fewer unknowns, same physics.
//! * [`ThermalTier::Compact`] — the analytical superposition model
//!   ([`CompactModel`](crate::CompactModel)): closed-form per-source
//!   heat-spread kernel with amplitudes fitted against the full-grid
//!   solver. Microseconds per field, O(1) per cached-field probe — cheap
//!   enough to price individual moves.
//!
//! Oracles own their warm-start/context state; `solve` reproduces the
//! historical solve sequence of the grid-backed path bit for bit
//! (CG → damped-Jacobi fallback on divergence, context reset after a
//! fallback), so routing the default full-grid configuration through the
//! trait changes nothing observable.

use crate::{
    CgStats, FallbackStats, PowerMap, Preconditioner, TemperatureField, ThermalError,
    ThermalSimulator, ThermalSolveContext,
};

/// Accuracy/speed tier of a thermal oracle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ThermalTier {
    /// Closed-form superposition model, fitted against the full-grid
    /// solver. Microseconds per evaluation.
    Compact,
    /// Finite-volume multigrid-CG solve at half the lateral resolution.
    CoarseGrid,
    /// Finite-volume multigrid-CG solve at full evaluation resolution
    /// (the default, and the ground truth the other tiers are measured
    /// against).
    FullGrid,
}

impl ThermalTier {
    /// Stable lowercase identifier used in config, CLI flags, trace
    /// events, and benchmark artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            ThermalTier::Compact => "compact",
            ThermalTier::CoarseGrid => "coarse-grid",
            ThermalTier::FullGrid => "full-grid",
        }
    }

    /// Parses an identifier (accepts the short aliases `coarse` and
    /// `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "compact" => Some(ThermalTier::Compact),
            "coarse-grid" | "coarse" => Some(ThermalTier::CoarseGrid),
            "full-grid" | "full" => Some(ThermalTier::FullGrid),
            _ => None,
        }
    }
}

impl std::fmt::Display for ThermalTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Solver-side statistics of one oracle solve. Grid-backed tiers fill
/// `cg` (or `fallback` after a CG breakdown); the compact tier reports
/// neither — its evaluation is direct arithmetic.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OracleStats {
    /// CG convergence record, when conjugate gradients ran.
    pub cg: Option<CgStats>,
    /// Damped-Jacobi fallback record, when CG broke down (or was forced
    /// to).
    pub fallback: Option<FallbackStats>,
}

/// A temperature model the placer can query at its tier's price point.
///
/// The power map handed to [`solve`](Self::solve) must be built at
/// [`grid_dims`](Self::grid_dims) — callers deposit cell powers at
/// whatever resolution the oracle evaluates, which
/// [`PowerMap::deposit`]'s physical-coordinate addressing makes
/// resolution-agnostic.
pub trait ThermalOracle {
    /// Which tier this oracle implements.
    fn tier(&self) -> ThermalTier;

    /// Power-map dimensions `(nx, ny, num_device_layers)` this oracle
    /// evaluates at.
    fn grid_dims(&self) -> (usize, usize, usize);

    /// Chip footprint `(width, depth)`, meters.
    fn footprint(&self) -> (f64, f64);

    /// Computes the steady-state temperature field for `power`.
    ///
    /// `force_fallback` forces the degraded damped-Jacobi path on
    /// grid-backed tiers (fault injection); the compact tier has no
    /// iterative solver and ignores it.
    ///
    /// # Errors
    ///
    /// [`ThermalError::GridMismatch`] when `power` does not match
    /// [`grid_dims`](Self::grid_dims); grid-backed tiers additionally
    /// propagate unrecoverable solver errors.
    fn solve(
        &mut self,
        power: &PowerMap,
        force_fallback: bool,
    ) -> crate::Result<(TemperatureField, OracleStats)>;

    /// Drops any warm-start state (the next solve runs cold).
    fn reset(&mut self);
}

/// Grid-backed oracle: the finite-volume solver plus its reusable solve
/// context, at either full or coarse resolution. This is the historical
/// stage-boundary path, verbatim: warm-started preconditioned CG, with
/// the damped-Jacobi fallback (and a context reset) on breakdown.
#[derive(Clone, PartialEq, Debug)]
pub struct GridOracle {
    tier: ThermalTier,
    sim: ThermalSimulator,
    context: ThermalSolveContext,
}

impl GridOracle {
    /// Wraps `sim` as the full-resolution ground-truth tier.
    pub fn full_grid(sim: ThermalSimulator, precond: Preconditioner) -> Self {
        let context = sim.context_with(precond);
        Self {
            tier: ThermalTier::FullGrid,
            sim,
            context,
        }
    }

    /// Wraps `sim` (expected to be discretized at a reduced lateral
    /// resolution) as the coarse-grid tier.
    pub fn coarse_grid(sim: ThermalSimulator, precond: Preconditioner) -> Self {
        let context = sim.context_with(precond);
        Self {
            tier: ThermalTier::CoarseGrid,
            sim,
            context,
        }
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &ThermalSimulator {
        &self.sim
    }

    /// The wrapped solve context (warm-start state, preconditioner).
    pub fn context(&self) -> &ThermalSolveContext {
        &self.context
    }
}

impl ThermalOracle for GridOracle {
    fn tier(&self) -> ThermalTier {
        self.tier
    }

    fn grid_dims(&self) -> (usize, usize, usize) {
        self.sim.grid_dims()
    }

    fn footprint(&self) -> (f64, f64) {
        self.sim.footprint()
    }

    fn solve(
        &mut self,
        power: &PowerMap,
        force_fallback: bool,
    ) -> crate::Result<(TemperatureField, OracleStats)> {
        if force_fallback {
            let (field, stats) = self.sim.solve_fallback(power)?;
            self.context.reset();
            return Ok((
                field,
                OracleStats {
                    cg: None,
                    fallback: Some(stats),
                },
            ));
        }
        match self.sim.solve_with(power, &mut self.context) {
            Ok(field) => Ok((
                field,
                OracleStats {
                    cg: self.context.last_stats(),
                    fallback: None,
                },
            )),
            Err(ThermalError::SolverDiverged { .. }) => {
                let (field, stats) = self.sim.solve_fallback(power)?;
                self.context.reset();
                Ok((
                    field,
                    OracleStats {
                        cg: None,
                        fallback: Some(stats),
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }

    fn reset(&mut self) {
        self.context.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerStack;

    fn power(nx: usize, ny: usize, layers: usize) -> PowerMap {
        let mut p = PowerMap::new(nx, ny, layers);
        for k in 0..layers {
            for j in 0..ny {
                for i in 0..nx {
                    p.add(
                        i,
                        j,
                        k,
                        1.0e-3 * (1.0 + i as f64 * 0.3 + j as f64 * 0.2 + k as f64),
                    );
                }
            }
        }
        p
    }

    #[test]
    fn tier_identifiers_round_trip() {
        for tier in [
            ThermalTier::Compact,
            ThermalTier::CoarseGrid,
            ThermalTier::FullGrid,
        ] {
            assert_eq!(ThermalTier::parse(tier.as_str()), Some(tier));
        }
        assert_eq!(ThermalTier::parse("coarse"), Some(ThermalTier::CoarseGrid));
        assert_eq!(ThermalTier::parse("full"), Some(ThermalTier::FullGrid));
        assert_eq!(ThermalTier::parse("fv"), None);
    }

    #[test]
    fn grid_oracle_matches_direct_solver_bit_for_bit() {
        let stack = LayerStack::mitll_0_18um(4);
        let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 8, 8).unwrap();
        let p = power(8, 8, 4);

        let mut context = sim.context_with(Preconditioner::default());
        let direct0 = sim.solve_with(&p, &mut context).unwrap();
        let direct1 = sim.solve_with(&p, &mut context).unwrap();

        let mut oracle = GridOracle::full_grid(sim, Preconditioner::default());
        let (o0, s0) = oracle.solve(&p, false).unwrap();
        let (o1, s1) = oracle.solve(&p, false).unwrap();
        assert_eq!(direct0, o0, "cold solve must be the historical path");
        assert_eq!(direct1, o1, "warm solve must be the historical path");
        assert!(!s0.cg.unwrap().warm_started);
        assert!(s1.cg.unwrap().warm_started);
        assert_eq!(oracle.tier(), ThermalTier::FullGrid);
    }

    #[test]
    fn forced_fallback_resets_warm_start() {
        let stack = LayerStack::mitll_0_18um(2);
        let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 4, 4).unwrap();
        let p = power(4, 4, 2);
        let mut oracle = GridOracle::full_grid(sim, Preconditioner::default());
        let (_, stats) = oracle.solve(&p, true).unwrap();
        assert!(stats.fallback.is_some());
        assert!(stats.cg.is_none());
        let (_, stats) = oracle.solve(&p, false).unwrap();
        assert!(
            !stats.cg.unwrap().warm_started,
            "fallback must drop the warm start"
        );
    }
}
