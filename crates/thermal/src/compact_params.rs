//! Checked-in compact-model parameters for the canonical fit geometry.
//!
//! [`CompactModel::fit`](crate::CompactModel::fit) runs in milliseconds,
//! so production code fits against the actual chip geometry at startup;
//! these serialized constants exist to (a) pin the fit as a regression
//! reference — if the solver or the fit drift, the `canonical_params`
//! test fails loudly — and (b) document the error contract the rest of
//! the system (CI gate, bench `thermal_oracle` section, proptests) is
//! built on.
//!
//! Canonical geometry: 1 mm × 1 mm chip, 16 × 16 lateral grid, 4-layer
//! MIT-LL 0.18 µm stack ([`LayerStack::mitll_0_18um`]), the defaults the
//! placer uses for its thermal evaluation grid.
//!
//! All `L × L` matrices are row-major `[source_layer * L + eval_layer]`
//! with layer 0 closest to the heat sink.

use crate::{CompactParams, LayerStack, ThermalSimulator};

/// Maximum tolerated compact-vs-multigrid ΔT error, relative to the peak
/// multigrid temperature rise, on the canonical fit impulses. The CI
/// smoke job and the bench `thermal_oracle` section fail when a fresh fit
/// exceeds this. The canonical fit currently achieves ≈ 0.052; the gate
/// leaves ~3× headroom before failing the build.
pub const CROSS_MODEL_GATE: f64 = 0.15;

/// Canonical chip footprint, meters.
pub const CANONICAL_FOOTPRINT: (f64, f64) = (1.0e-3, 1.0e-3);

/// Canonical lateral evaluation grid.
pub const CANONICAL_GRID: (usize, usize) = (16, 16);

/// Canonical number of device layers.
pub const CANONICAL_LAYERS: usize = 4;

/// Fitted per-pair vertical-depth parameters on the canonical geometry.
pub const CANONICAL_A: [f64; CANONICAL_LAYERS * CANONICAL_LAYERS] = [
    0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05,
];

/// Fitted per-pair lateral spread lengths on the canonical geometry,
/// meters.
pub const CANONICAL_SPREAD: [f64; CANONICAL_LAYERS * CANONICAL_LAYERS] = [
    1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5,
    1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5, 1.5625e-5,
];

/// Fitted per-pair smooth-kernel amplitudes (K/W) on the canonical
/// geometry.
pub const CANONICAL_AMPLITUDE: [f64; CANONICAL_LAYERS * CANONICAL_LAYERS] = [
    4.095570945725884,
    4.489449364380873,
    4.739817920652027,
    4.861404602167158,
    4.489449818007202,
    5.029264335313959,
    5.372455207869503,
    5.539140152000708,
    4.739818677053109,
    5.372455510645095,
    5.828586415412031,
    6.050155850961248,
    4.861405510058266,
    5.5391406062679724,
    6.050156002453689,
    6.339564001234201,
];

/// Fitted per-pair source-bin local self-heating terms (K/W) on the
/// canonical geometry.
pub const CANONICAL_LOCAL: [f64; CANONICAL_LAYERS * CANONICAL_LAYERS] = [
    314.9882887213916,
    276.52705351582074,
    251.8274930849846,
    239.75386028228743,
    276.5270464565774,
    385.0080476927299,
    351.5246605018754,
    335.15871435182083,
    251.82748131399674,
    351.5246557901137,
    468.3392713132085,
    446.92741397735415,
    239.75384615383012,
    335.1587072825618,
    446.9274116198455,
    580.105169053458,
];

/// The checked-in canonical parameters as a [`CompactParams`] value.
pub fn canonical() -> CompactParams {
    CompactParams {
        num_layers: CANONICAL_LAYERS,
        a: CANONICAL_A.to_vec(),
        spread: CANONICAL_SPREAD.to_vec(),
        amplitude: CANONICAL_AMPLITUDE.to_vec(),
        local: CANONICAL_LOCAL.to_vec(),
    }
}

/// The simulator the canonical parameters were fitted against.
///
/// # Errors
///
/// Fails only if the canonical constants themselves are invalid.
pub fn canonical_simulator() -> crate::Result<ThermalSimulator> {
    let (width, depth) = CANONICAL_FOOTPRINT;
    let (nx, ny) = CANONICAL_GRID;
    ThermalSimulator::new(
        LayerStack::mitll_0_18um(CANONICAL_LAYERS),
        width,
        depth,
        nx,
        ny,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactModel, Preconditioner};

    /// A fresh fit on the canonical geometry must reproduce the
    /// checked-in constants (the fit is deterministic) and stay under the
    /// documented cross-model gate.
    #[test]
    fn canonical_params_match_fresh_fit() {
        let sim = canonical_simulator().unwrap();
        let (model, report) = CompactModel::fit(&sim, Preconditioner::default()).unwrap();
        let fitted = model.params();
        let pinned = canonical();
        for (name, fit, pin) in [
            ("a", &fitted.a, &pinned.a),
            ("spread", &fitted.spread, &pinned.spread),
            ("amplitude", &fitted.amplitude, &pinned.amplitude),
            ("local", &fitted.local, &pinned.local),
        ] {
            for (idx, (&f, &p)) in fit.iter().zip(pin.iter()).enumerate() {
                let tol = 1e-6 * p.abs().max(1e-300);
                assert!(
                    (f - p).abs() <= tol,
                    "{name}[{idx}] drifted: fitted {f:e} vs pinned {p:e}"
                );
            }
        }
        assert!(
            report.max_rel_error <= CROSS_MODEL_GATE,
            "fit error {} exceeds gate {}",
            report.max_rel_error,
            CROSS_MODEL_GATE
        );
        pinned.validate().unwrap();
    }
}
