//! Thermal models for 3D-IC placement.
//!
//! Two levels of fidelity, mirroring how the DAC'07 flow uses temperature:
//!
//! 1. **Placement-time resistance model** ([`ResistanceModel`]): the paper's
//!    straight-path approximation — heat flows from a cell to each chip
//!    surface along a straight column whose cross-section equals the cell
//!    area, through the effective conductivity of the stack, ending in a
//!    convective film at the surface. The six directional paths combine in
//!    parallel. This gives `R_j^cell` of Eq. 2 in O(1) per query, plus the
//!    linearized vertical profile `R0_z + Rz_slope · z` of §3.2.
//! 2. **Evaluation-time simulator** ([`ThermalSimulator`]): a steady-state 3D
//!    finite-volume discretization of `∇·(k∇T) = −q` over the layer stack
//!    with a convective boundary at the heat sink, solved with conjugate
//!    gradients. The paper evaluates final placements with FEA under the
//!    same boundary conditions; both are consistent discretizations of the
//!    same PDE (DESIGN.md §5, substitution 3).
//! 3. **Tiered oracles** ([`ThermalOracle`]): the placer-facing dispatch
//!    layer. The finite-volume solver backs the `full-grid` and
//!    `coarse-grid` tiers ([`GridOracle`]); the `compact` tier
//!    ([`CompactModel`]) is a closed-form superposition model fitted
//!    against the solver, fast enough to price individual moves
//!    (DESIGN.md §14).
//!
//! # Example
//!
//! ```
//! use tvp_thermal::{LayerStack, ThermalSimulator, PowerMap};
//!
//! let stack = LayerStack::mitll_0_18um(4);
//! let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 8, 8)?;
//! let mut power = PowerMap::new(8, 8, 4);
//! power.deposit(0.5e-3, 0.5e-3, 3, 0.1, 1.0e-3, 1.0e-3); // 0.1 W on top layer
//! let field = sim.solve(&power)?;
//! assert!(field.max_temperature() > field.ambient());
//! # Ok::<(), tvp_thermal::ThermalError>(())
//! ```

mod compact;
pub mod compact_params;
mod error;
mod grid;
mod multigrid;
mod oracle;
mod power_map;
mod resistance;
mod stack;

pub use compact::{f_kernel, CompactFitReport, CompactModel, CompactParams};
pub use error::ThermalError;
pub use grid::{
    CgStats, FallbackStats, PrecondKind, Preconditioner, TemperatureField, ThermalSimulator,
    ThermalSolveContext,
};
pub use oracle::{GridOracle, OracleStats, ThermalOracle, ThermalTier};
pub use power_map::PowerMap;
pub use resistance::{ResistanceModel, VerticalProfile};
pub use stack::{HeatSink, LayerSpec, LayerStack};

/// Convenience alias used by solver entry points.
pub type Result<T> = std::result::Result<T, ThermalError>;
