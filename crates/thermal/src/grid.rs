//! Steady-state finite-volume thermal simulation.
//!
//! The chip is discretized into `nx × ny` columns. Vertically there is one
//! node layer for the bulk substrate plus one per device layer. Adjacent
//! nodes exchange heat through conduction conductances `G = k·A/d`; the
//! substrate couples to ambient through the series of half its own
//! conduction and the heat-sink convective film, and the remaining faces
//! carry a weak natural-convection film. The resulting conductance matrix
//! is symmetric positive definite, and `G·ΔT = P` is solved with
//! Jacobi-preconditioned conjugate gradients.
//!
//! # Parallelism and warm starting
//!
//! The CG kernels (stencil apply, axpy updates, dot products) run on the
//! `tvp-parallel` pool. Elementwise kernels are bitwise identical for
//! every thread count; dot products keep the historical single-
//! accumulator loop when the effective thread count is 1 and switch to a
//! length-chunked, order-folded reduction otherwise, which is itself
//! identical across all parallel thread counts (see `tvp-parallel`'s
//! determinism contract).
//!
//! Placement loops solve a slowly-drifting sequence of power maps, so
//! [`ThermalSolveContext`] carries the previous solution and the cached
//! Jacobi preconditioner between [`ThermalSimulator::solve_with`] calls:
//! CG then starts from the old field instead of zero and converges in a
//! fraction of the iterations.

use crate::{LayerStack, PowerMap, ThermalError};
use tvp_parallel as parallel;

/// Minimum elements per parallel chunk for elementwise CG kernels; grids
/// smaller than this run single-chunk (i.e. serially).
const ELEM_MIN_CHUNK: usize = 2048;
/// Minimum elements per chunk for chunked dot-product reductions.
const DOT_MIN_CHUNK: usize = 4096;

/// Steady-state temperature solution over the simulation grid.
#[derive(Clone, PartialEq, Debug)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    /// Device layers only (substrate excluded).
    nz: usize,
    ambient: f64,
    /// Absolute temperatures of device-layer nodes, °C,
    /// `(k, j, i)` row-major.
    values: Vec<f64>,
}

impl TemperatureField {
    /// Grid dimensions `(nx, ny, num_device_layers)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// The ambient temperature the rise is measured against, °C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Temperature of device-layer node `(i, j, layer)`, °C.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn at(&self, i: usize, j: usize, layer: usize) -> f64 {
        assert!(i < self.nx && j < self.ny && layer < self.nz);
        self.values[(layer * self.ny + j) * self.nx + i]
    }

    /// Mean temperature over all device-layer nodes, °C.
    pub fn average_temperature(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum device-layer node temperature, °C.
    pub fn max_temperature(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature of one device layer, °C.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_average(&self, layer: usize) -> f64 {
        assert!(layer < self.nz);
        let n = self.nx * self.ny;
        self.values[layer * n..(layer + 1) * n].iter().sum::<f64>() / n as f64
    }

    /// Samples the field at a physical position (clamped to the chip).
    pub fn sample(&self, x: f64, y: f64, layer: usize, width: f64, depth: f64) -> f64 {
        let i = ((x / width * self.nx as f64).floor() as isize).clamp(0, self.nx as isize - 1);
        let j = ((y / depth * self.ny as f64).floor() as isize).clamp(0, self.ny as isize - 1);
        self.at(i as usize, j as usize, layer.min(self.nz - 1))
    }
}

/// Finite-volume steady-state simulator for one chip geometry.
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalSimulator {
    stack: LayerStack,
    width: f64,
    depth: f64,
    nx: usize,
    ny: usize,
    /// Total node layers = device layers + 1 (substrate at k = 0).
    nz_total: usize,
    /// Conductances, precomputed per direction (uniform grid):
    /// lateral x/y per node layer, vertical between node layers, and
    /// boundary films.
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// `gz[k]` couples node layer `k` to `k + 1`.
    gz: Vec<f64>,
    /// Grounding conductance to ambient per node layer (bottom film on the
    /// substrate layer, weak top film on the topmost layer).
    gamb: Vec<f64>,
    /// Weak side films per node layer (applied on boundary columns).
    gside: Vec<f64>,
}

impl ThermalSimulator {
    /// Creates a simulator for a `width × depth` chip with the given stack,
    /// discretized into `nx × ny` columns.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive
    /// footprint, grid, or stack parameter.
    pub fn new(
        stack: LayerStack,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> crate::Result<Self> {
        stack.validate()?;
        for (name, value) in [
            ("chip width", width),
            ("chip depth", depth),
            ("nx", nx as f64),
            ("ny", ny as f64),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        let nz_total = stack.num_layers + 1;
        let dx = width / nx as f64;
        let dy = depth / ny as f64;
        let k = stack.conductivity;
        let area_xy = dx * dy;

        // Node-layer thicknesses and conductivities: the bulk substrate
        // node (k = 0) conducts at silicon conductivity; device layers use
        // the stack's effective conductivity.
        let k_sub = stack.substrate_conductivity;
        let mut tz = Vec::with_capacity(nz_total);
        let mut kz = Vec::with_capacity(nz_total);
        tz.push(stack.substrate_thickness);
        kz.push(k_sub);
        for _ in 0..stack.num_layers {
            tz.push(stack.layer_thickness);
            kz.push(k);
        }

        let gx: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dy * t) / dx)
            .collect();
        let gy: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dx * t) / dy)
            .collect();
        let mut gz = Vec::with_capacity(nz_total - 1);
        for kk in 0..nz_total - 1 {
            // Series of: half of layer kk at its conductivity, the bonding
            // dielectric (counted at stack conductivity), half of kk + 1.
            let r = tz[kk] / (2.0 * kz[kk])
                + stack.interlayer_thickness / k
                + tz[kk + 1] / (2.0 * kz[kk + 1]);
            gz.push(area_xy / r);
        }

        let h_sink = stack.heat_sink.convection_coefficient;
        let h_side = stack.side_convection_coefficient;
        let mut gamb = vec![0.0; nz_total];
        // Bottom: half the substrate conduction in series with the sink film.
        gamb[0] = area_xy / (tz[0] / 2.0 / k_sub + 1.0 / h_sink);
        // Top: half the top layer in series with the weak film.
        gamb[nz_total - 1] += area_xy / (tz[nz_total - 1] / 2.0 / k + 1.0 / h_side);
        // Side films per layer, applied along boundary columns.
        let gside: Vec<f64> = tz
            .iter()
            .map(|&t| {
                // Use the mean of the two side areas; the film dominates.
                let area = t * (dx + dy) / 2.0;
                area / (1.0 / h_side)
            })
            .collect();

        Ok(Self {
            stack,
            width,
            depth,
            nx,
            ny,
            nz_total,
            gx,
            gy,
            gz,
            gamb,
            gside,
        })
    }

    /// The layer stack being simulated.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Chip footprint `(width, depth)`, meters.
    pub fn footprint(&self) -> (f64, f64) {
        (self.width, self.depth)
    }

    /// Grid dimensions the power map must match: `(nx, ny, num_layers)`.
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.stack.num_layers)
    }

    /// The stencil at flat node `n`: `(diag, acc)` where the matrix row
    /// contributes `diag · t[n] − acc`. Terms accumulate in the fixed
    /// order ±x, ±y, ±z so the arithmetic is identical however the nodes
    /// are chunked across threads.
    #[inline]
    fn stencil(&self, t: &[f64], n: usize) -> (f64, f64) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz_total);
        let plane = nx * ny;
        let k = n / plane;
        let rem = n % plane;
        let j = rem / nx;
        let i = rem % nx;
        let mut diag = self.gamb[k];
        let mut acc = 0.0;
        if i + 1 < nx {
            diag += self.gx[k];
            acc += self.gx[k] * t[n + 1];
        } else {
            diag += self.gside[k];
        }
        if i > 0 {
            diag += self.gx[k];
            acc += self.gx[k] * t[n - 1];
        } else {
            diag += self.gside[k];
        }
        if j + 1 < ny {
            diag += self.gy[k];
            acc += self.gy[k] * t[n + nx];
        } else {
            diag += self.gside[k];
        }
        if j > 0 {
            diag += self.gy[k];
            acc += self.gy[k] * t[n - nx];
        } else {
            diag += self.gside[k];
        }
        if k + 1 < nz {
            diag += self.gz[k];
            acc += self.gz[k] * t[n + plane];
        }
        if k > 0 {
            diag += self.gz[k - 1];
            acc += self.gz[k - 1] * t[n - plane];
        }
        (diag, acc)
    }

    /// Applies the conductance matrix: `out = G · t`. Matrix-free and
    /// embarrassingly parallel: every output node is an independent pure
    /// function of `t`, so the result is bitwise identical for any thread
    /// count.
    fn apply(&self, t: &[f64], out: &mut [f64]) {
        parallel::for_each_chunk_mut(out, ELEM_MIN_CHUNK, |start, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                let n = start + off;
                let (diag, acc) = self.stencil(t, n);
                *o = diag * t[n] - acc;
            }
        });
    }

    /// Diagonal of the conductance matrix (for Jacobi preconditioning).
    fn diagonal(&self) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz_total);
        let mut diag = vec![0.0; nx * ny * nz];
        parallel::for_each_chunk_mut(&mut diag, ELEM_MIN_CHUNK, |start, chunk| {
            let plane = nx * ny;
            for (off, slot) in chunk.iter_mut().enumerate() {
                let n = start + off;
                let k = n / plane;
                let rem = n % plane;
                let j = rem / nx;
                let i = rem % nx;
                let mut d = self.gamb[k];
                d += if i + 1 < nx {
                    self.gx[k]
                } else {
                    self.gside[k]
                };
                d += if i > 0 { self.gx[k] } else { self.gside[k] };
                d += if j + 1 < ny {
                    self.gy[k]
                } else {
                    self.gside[k]
                };
                d += if j > 0 { self.gy[k] } else { self.gside[k] };
                if k + 1 < nz {
                    d += self.gz[k];
                }
                if k > 0 {
                    d += self.gz[k - 1];
                }
                *slot = d;
            }
        });
        diag
    }

    /// Creates a reusable solve context for this simulator: the Jacobi
    /// preconditioner is computed once, and each
    /// [`solve_with`](Self::solve_with) stores its solution for the next
    /// call to warm start from.
    pub fn context(&self) -> ThermalSolveContext {
        let diag = self.diagonal();
        let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();
        ThermalSolveContext {
            inv_diag,
            prev: None,
            stats: None,
        }
    }

    /// Solves for the steady-state temperature field produced by `power`,
    /// cold-starting from zero. Equivalent to
    /// [`solve_with`](Self::solve_with) on a fresh
    /// [`context`](Self::context).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] if the power map grid differs
    /// from [`grid_dims`](Self::grid_dims), or
    /// [`ThermalError::SolverDiverged`] if CG fails to converge (which for
    /// an SPD conductance matrix indicates pathological parameters).
    pub fn solve(&self, power: &PowerMap) -> crate::Result<TemperatureField> {
        let mut context = self.context();
        self.solve_with(power, &mut context)
    }

    /// Solves for the steady-state field, warm-starting CG from the
    /// previous solution held in `context` (if any) and caching this
    /// solution there for the next call. For the slowly-drifting power
    /// maps a placement loop produces, warm starts converge in a fraction
    /// of the cold iteration count; [`ThermalSolveContext::last_stats`]
    /// reports what happened.
    ///
    /// A context built for a different grid geometry is detected and
    /// rebuilt (losing the warm-start state) rather than misused.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        power: &PowerMap,
        context: &mut ThermalSolveContext,
    ) -> crate::Result<TemperatureField> {
        if power.dims() != self.grid_dims() {
            return Err(ThermalError::GridMismatch {
                expected: self.grid_dims(),
                found: power.dims(),
            });
        }
        let n = self.nx * self.ny * self.nz_total;
        if context.inv_diag.len() != n {
            *context = self.context();
        }
        // Right-hand side: device layer l feeds node layer l + 1.
        let mut rhs = vec![0.0; n];
        let dev_nodes = self.nx * self.ny;
        rhs[dev_nodes..].copy_from_slice(power.values());

        let x0 = context.prev.take();
        let (t_rise, stats) = self.conjugate_gradient(&rhs, &context.inv_diag, x0)?;
        let ambient = self.stack.heat_sink.ambient;
        let values: Vec<f64> = t_rise[dev_nodes..].iter().map(|dt| ambient + dt).collect();
        context.stats = Some(stats);
        context.prev = Some(t_rise);
        Ok(TemperatureField {
            nx: self.nx,
            ny: self.ny,
            nz: self.stack.num_layers,
            ambient,
            values,
        })
    }

    /// Damped-Jacobi fallback solve for when conjugate gradients break
    /// down (or are injected to break down by a fault plan).
    ///
    /// The iteration `x ← x + ω·D⁻¹·(b − G·x)` converges unconditionally
    /// for the weakly diagonally dominant SPD conductance matrix, just
    /// slowly — so this is a *degraded* path: it runs a bounded number of
    /// sweeps and returns the best field it reached together with the
    /// residual, instead of erroring on slow convergence. Callers should
    /// flag the result as thermally degraded.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] if the power map grid differs
    /// from [`grid_dims`](Self::grid_dims). Non-convergence is *not* an
    /// error here; inspect [`FallbackStats::residual`].
    pub fn solve_fallback(
        &self,
        power: &PowerMap,
    ) -> crate::Result<(TemperatureField, FallbackStats)> {
        if power.dims() != self.grid_dims() {
            return Err(ThermalError::GridMismatch {
                expected: self.grid_dims(),
                found: power.dims(),
            });
        }
        let n = self.nx * self.ny * self.nz_total;
        let dev_nodes = self.nx * self.ny;
        let mut rhs = vec![0.0; n];
        rhs[dev_nodes..].copy_from_slice(power.values());

        let diag = self.diagonal();
        let b_norm = dot(&rhs, &rhs).sqrt();
        let ambient = self.stack.heat_sink.ambient;
        let mut x = vec![0.0; n];
        let mut stats = FallbackStats {
            iterations: 0,
            residual: 0.0,
        };
        if b_norm > 0.0 {
            const OMEGA: f64 = 0.8;
            const MAX_SWEEPS: usize = 20_000;
            let tol = 1.0e-8 * b_norm;
            let mut gx = vec![0.0; n];
            for sweep in 1..=MAX_SWEEPS {
                self.apply(&x, &mut gx);
                let mut r_sq = 0.0;
                for i in 0..n {
                    let r = rhs[i] - gx[i];
                    r_sq += r * r;
                    x[i] += OMEGA * r / diag[i];
                }
                let r_norm = r_sq.sqrt();
                stats.iterations = sweep;
                stats.residual = r_norm / b_norm;
                if r_norm <= tol {
                    break;
                }
            }
        }
        let values: Vec<f64> = x[dev_nodes..].iter().map(|dt| ambient + dt).collect();
        Ok((
            TemperatureField {
                nx: self.nx,
                ny: self.ny,
                nz: self.stack.num_layers,
                ambient,
                values,
            },
            stats,
        ))
    }

    /// Jacobi-preconditioned CG on `G·x = b`, starting from `x0` (or
    /// zero). The cold path (`x0 = None`, one thread) reproduces the
    /// historical serial solver bit for bit.
    fn conjugate_gradient(
        &self,
        b: &[f64],
        inv_diag: &[f64],
        x0: Option<Vec<f64>>,
    ) -> crate::Result<(Vec<f64>, CgStats)> {
        let n = b.len();
        let warm_started = x0.is_some();
        let b_norm = dot(b, b).sqrt();
        if b_norm == 0.0 {
            let stats = CgStats {
                iterations: 0,
                residual: 0.0,
                warm_started,
            };
            return Ok((vec![0.0; n], stats));
        }
        let tol = 1.0e-10 * b_norm;
        let max_iter = 20 * n + 200;

        let (mut x, mut r) = match x0 {
            Some(x0) => {
                // r = b − G·x₀.
                let mut gx = vec![0.0; n];
                self.apply(&x0, &mut gx);
                let r: Vec<f64> = b.iter().zip(&gx).map(|(bi, gi)| bi - gi).collect();
                (x0, r)
            }
            None => (vec![0.0; n], b.to_vec()),
        };
        let mut r_norm = dot(&r, &r).sqrt();
        if r_norm <= tol {
            // Warm start already at the answer (identical power map).
            let stats = CgStats {
                iterations: 0,
                residual: r_norm / b_norm,
                warm_started,
            };
            return Ok((x, stats));
        }

        let mut z: Vec<f64> = r.iter().zip(inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = dot(&r, &z);
        let mut ap = vec![0.0; n];

        for iteration in 1..=max_iter {
            self.apply(&p, &mut ap);
            let pap = dot(&p, &ap);
            let alpha = rz / pap;
            parallel::for_each_chunk_mut2(&mut x, &mut r, ELEM_MIN_CHUNK, |start, xs, rs| {
                for (off, (xi, ri)) in xs.iter_mut().zip(rs.iter_mut()).enumerate() {
                    let i = start + off;
                    *xi += alpha * p[i];
                    *ri -= alpha * ap[i];
                }
            });
            r_norm = dot(&r, &r).sqrt();
            if r_norm <= tol {
                let stats = CgStats {
                    iterations: iteration,
                    residual: r_norm / b_norm,
                    warm_started,
                };
                return Ok((x, stats));
            }
            parallel::for_each_chunk_mut(&mut z, ELEM_MIN_CHUNK, |start, zs| {
                for (off, zi) in zs.iter_mut().enumerate() {
                    let i = start + off;
                    *zi = r[i] * inv_diag[i];
                }
            });
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            parallel::for_each_chunk_mut(&mut p, ELEM_MIN_CHUNK, |start, ps| {
                for (off, pi) in ps.iter_mut().enumerate() {
                    *pi = z[start + off] + beta * *pi;
                }
            });
        }
        let residual = r_norm / b_norm;
        // Accept near-converged solutions; flag genuine divergence.
        if residual < 1.0e-6 {
            let stats = CgStats {
                iterations: max_iter,
                residual,
                warm_started,
            };
            Ok((x, stats))
        } else {
            Err(ThermalError::SolverDiverged {
                iterations: max_iter,
                residual,
            })
        }
    }
}

/// Convergence record of one damped-Jacobi fallback solve
/// ([`ThermalSimulator::solve_fallback`]).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FallbackStats {
    /// Damped-Jacobi sweeps executed.
    pub iterations: usize,
    /// Final residual norm relative to `‖b‖` (0 when the right-hand side
    /// was all zero).
    pub residual: f64,
}

/// Convergence record of one CG solve.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgStats {
    /// Iterations consumed (0 = the start vector already satisfied the
    /// tolerance).
    pub iterations: usize,
    /// Final residual norm relative to `‖b‖`.
    pub residual: f64,
    /// Whether the solve started from a previous solution.
    pub warm_started: bool,
}

/// Reusable state threaded between [`ThermalSimulator::solve_with`]
/// calls: the cached Jacobi preconditioner, the previous solution vector
/// (the warm start), and the last solve's [`CgStats`].
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalSolveContext {
    inv_diag: Vec<f64>,
    /// Previous temperature-rise solution over all node layers.
    prev: Option<Vec<f64>>,
    stats: Option<CgStats>,
}

impl ThermalSolveContext {
    /// Statistics of the most recent solve through this context.
    pub fn last_stats(&self) -> Option<CgStats> {
        self.stats
    }

    /// Drops the warm-start state (the next solve runs cold).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

/// Dot product. One thread: the historical single-accumulator loop
/// (bitwise identical to the original serial solver). Parallel: chunk
/// partials folded in fixed chunk order, identical for every thread
/// count ≥ 2 (and for small vectors — a single chunk — identical to the
/// serial loop too).
fn dot(a: &[f64], b: &[f64]) -> f64 {
    if parallel::threads() == 1 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    } else {
        parallel::sum_chunks(a.len(), DOT_MIN_CHUNK, |range| {
            a[range.clone()]
                .iter()
                .zip(&b[range])
                .map(|(x, y)| x * y)
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator(layers: usize, nx: usize, ny: usize) -> ThermalSimulator {
        ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1.0e-3, 1.0e-3, nx, ny).unwrap()
    }

    /// Single-column sanity check against the series-resistance analytic
    /// solution: one device layer, 1×1 grid, all heat exits the sink path.
    #[test]
    fn single_column_matches_analytic_resistance() {
        let mut stack = LayerStack::mitll_0_18um(1);
        // Make the non-sink films negligible so the analytic path is exact.
        stack.side_convection_coefficient = 1.0e-9;
        let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 1, 1).unwrap();
        let mut power = PowerMap::new(1, 1, 1);
        power.add(0, 0, 0, 0.5);
        let field = sim.solve(&power).unwrap();

        let area = 1.0e-6; // 1 mm × 1 mm
        let k = stack.conductivity;
        let k_sub = stack.substrate_conductivity;
        // Node-center to ambient: layer0 half + bond at stack conductivity,
        // then the full substrate (half to its center, half below) at
        // silicon conductivity, then the sink film.
        let r = (stack.layer_thickness / 2.0 + stack.interlayer_thickness) / (k * area)
            + stack.substrate_thickness / (k_sub * area)
            + 1.0 / (stack.heat_sink.convection_coefficient * area);
        let expected = 0.5 * r;
        let got = field.at(0, 0, 0) - field.ambient();
        assert!(
            (got - expected).abs() < 1e-6 * expected.max(1.0),
            "ΔT = {got}, analytic {expected}"
        );
    }

    #[test]
    fn upper_layers_run_hotter() {
        let sim = simulator(4, 4, 4);
        let mut power = PowerMap::new(4, 4, 4);
        // Same uniform power on every layer.
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    power.add(i, j, k, 1.0e-3);
                }
            }
        }
        let field = sim.solve(&power).unwrap();
        for l in 0..3 {
            assert!(
                field.layer_average(l + 1) > field.layer_average(l),
                "layer {} ({}) should be cooler than layer {} ({})",
                l,
                field.layer_average(l),
                l + 1,
                field.layer_average(l + 1)
            );
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_field() {
        let sim = simulator(2, 6, 6);
        let mut power = PowerMap::new(6, 6, 2);
        power.add(2, 2, 1, 0.01);
        power.add(3, 3, 1, 0.01);
        power.add(2, 3, 1, 0.01);
        power.add(3, 2, 1, 0.01);
        let field = sim.solve(&power).unwrap();
        for l in 0..2 {
            for j in 0..6 {
                for i in 0..6 {
                    let a = field.at(i, j, l);
                    let b = field.at(5 - i, 5 - j, l);
                    assert!((a - b).abs() < 1e-9, "field must be 180° symmetric");
                }
            }
        }
    }

    #[test]
    fn superposition_holds() {
        // The system is linear: solve(p1 + p2) == solve(p1) + solve(p2) - ambient.
        let sim = simulator(2, 4, 4);
        let mut p1 = PowerMap::new(4, 4, 2);
        p1.add(0, 0, 0, 0.02);
        let mut p2 = PowerMap::new(4, 4, 2);
        p2.add(3, 3, 1, 0.05);
        let mut p12 = PowerMap::new(4, 4, 2);
        p12.add(0, 0, 0, 0.02);
        p12.add(3, 3, 1, 0.05);
        let f1 = sim.solve(&p1).unwrap();
        let f2 = sim.solve(&p2).unwrap();
        let f12 = sim.solve(&p12).unwrap();
        for l in 0..2 {
            for j in 0..4 {
                for i in 0..4 {
                    let lhs = f12.at(i, j, l) - f12.ambient();
                    let rhs = (f1.at(i, j, l) - f1.ambient()) + (f2.at(i, j, l) - f2.ambient());
                    assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1e-12));
                }
            }
        }
    }

    #[test]
    fn power_near_sink_is_cooler_than_power_far_from_sink() {
        let sim = simulator(4, 4, 4);
        let mut low = PowerMap::new(4, 4, 4);
        low.add(1, 1, 0, 0.05);
        let mut high = PowerMap::new(4, 4, 4);
        high.add(1, 1, 3, 0.05);
        let t_low = sim.solve(&low).unwrap().max_temperature();
        let t_high = sim.solve(&high).unwrap().max_temperature();
        assert!(
            t_high > t_low,
            "power on the top layer ({t_high}) must run hotter than near the sink ({t_low})"
        );
    }

    #[test]
    fn zero_power_is_ambient() {
        let sim = simulator(2, 3, 3);
        let field = sim.solve(&PowerMap::new(3, 3, 2)).unwrap();
        assert!((field.average_temperature() - field.ambient()).abs() < 1e-12);
        assert!((field.max_temperature() - field.ambient()).abs() < 1e-12);
    }

    #[test]
    fn grid_mismatch_is_reported() {
        let sim = simulator(2, 4, 4);
        let power = PowerMap::new(3, 4, 2);
        assert!(matches!(
            sim.solve(&power),
            Err(ThermalError::GridMismatch { .. })
        ));
    }

    #[test]
    fn sample_reads_the_right_bin() {
        let sim = simulator(1, 4, 4);
        let mut power = PowerMap::new(4, 4, 1);
        power.add(3, 0, 0, 0.1);
        let field = sim.solve(&power).unwrap();
        let sampled = field.sample(0.9e-3, 0.1e-3, 0, 1.0e-3, 1.0e-3);
        assert_eq!(sampled, field.at(3, 0, 0));
    }

    /// A smooth, asymmetric power map exercising every grid bin.
    fn dense_power(nx: usize, ny: usize, layers: usize) -> PowerMap {
        let mut power = PowerMap::new(nx, ny, layers);
        for k in 0..layers {
            for j in 0..ny {
                for i in 0..nx {
                    let w = 1.0e-3 * (1.0 + i as f64 * 0.37 + j as f64 * 0.11 + k as f64 * 0.53);
                    power.add(i, j, k, w);
                }
            }
        }
        power
    }

    #[test]
    fn warm_start_matches_cold_solve() {
        let sim = simulator(4, 8, 8);
        let power = dense_power(8, 8, 4);
        let cold = sim.solve(&power).unwrap();

        let mut context = sim.context();
        sim.solve_with(&power, &mut context).unwrap();
        let cold_iters = context.last_stats().unwrap().iterations;
        assert!(cold_iters > 0);
        assert!(!context.last_stats().unwrap().warm_started);

        // Re-solving the identical map warm must agree with the cold
        // field to CG tolerance and converge (near-)instantly.
        let warm = sim.solve_with(&power, &mut context).unwrap();
        let stats = context.last_stats().unwrap();
        assert!(stats.warm_started);
        assert!(
            stats.iterations < cold_iters / 4,
            "warm solve of the same map took {} iterations vs {cold_iters} cold",
            stats.iterations
        );
        for l in 0..4 {
            for j in 0..8 {
                for i in 0..8 {
                    let c = cold.at(i, j, l);
                    let w = warm.at(i, j, l);
                    assert!(
                        (c - w).abs() <= 1e-6 * c.abs().max(1.0),
                        "cold {c} vs warm {w} at ({i},{j},{l})"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_saves_iterations_on_perturbed_power() {
        let sim = simulator(4, 8, 8);
        let base = dense_power(8, 8, 4);
        let mut perturbed = dense_power(8, 8, 4);
        // A small local drift, like one cell moving between solves.
        perturbed.add(3, 4, 2, 2.0e-4);
        perturbed.add(5, 1, 0, -1.0e-4);

        let cold_iters = {
            let mut context = sim.context();
            sim.solve_with(&perturbed, &mut context).unwrap();
            context.last_stats().unwrap().iterations
        };

        let mut context = sim.context();
        sim.solve_with(&base, &mut context).unwrap();
        let warm = sim.solve_with(&perturbed, &mut context).unwrap();
        let warm_stats = context.last_stats().unwrap();
        assert!(warm_stats.warm_started);
        assert!(
            warm_stats.iterations < cold_iters,
            "warm ({}) must beat cold ({cold_iters}) on a perturbed map",
            warm_stats.iterations
        );
        // And it is still the right answer.
        let cold = sim.solve(&perturbed).unwrap();
        for l in 0..4 {
            for j in 0..8 {
                for i in 0..8 {
                    let c = cold.at(i, j, l);
                    let w = warm.at(i, j, l);
                    assert!((c - w).abs() <= 1e-6 * c.abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn context_reset_forgets_the_warm_start() {
        let sim = simulator(2, 4, 4);
        let power = dense_power(4, 4, 2);
        let mut context = sim.context();
        sim.solve_with(&power, &mut context).unwrap();
        context.reset();
        sim.solve_with(&power, &mut context).unwrap();
        assert!(!context.last_stats().unwrap().warm_started);
    }

    #[test]
    fn context_from_wrong_geometry_is_rebuilt() {
        let sim_a = simulator(2, 4, 4);
        let sim_b = simulator(4, 8, 8);
        let mut context = sim_a.context();
        sim_a
            .solve_with(&dense_power(4, 4, 2), &mut context)
            .unwrap();
        // Same context against a different simulator: must not panic or
        // poison the solve, just run cold.
        let field = sim_b
            .solve_with(&dense_power(8, 8, 4), &mut context)
            .unwrap();
        assert!(!context.last_stats().unwrap().warm_started);
        assert!(field.max_temperature() > field.ambient());
    }

    #[test]
    fn solve_is_equivalent_across_thread_counts() {
        // Big enough that dot products span multiple chunks (> 4096
        // nodes), so the parallel reduction path actually executes.
        let sim = simulator(4, 32, 32);
        let power = dense_power(32, 32, 4);
        let serial = tvp_parallel::with_threads(1, || sim.solve(&power).unwrap());
        for threads in [2usize, 4] {
            let parallel_field = tvp_parallel::with_threads(threads, || sim.solve(&power).unwrap());
            for l in 0..4 {
                for j in 0..32 {
                    for i in 0..32 {
                        let s = serial.at(i, j, l);
                        let p = parallel_field.at(i, j, l);
                        // CG amplifies reduction reordering; the fields
                        // still agree far tighter than the solver tol.
                        assert!(
                            (s - p).abs() <= 1e-6 * s.abs().max(1.0),
                            "serial {s} vs {threads}-thread {p} at ({i},{j},{l})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_layers_same_total_power_runs_hotter() {
        // Stacking the same total power higher raises mean temperature —
        // the core 3D-IC thermal problem the paper motivates.
        let total = 0.2;
        let mut temps = Vec::new();
        for layers in [1usize, 2, 4] {
            let sim = simulator(layers, 4, 4);
            let mut power = PowerMap::new(4, 4, layers);
            let per_bin = total / (16.0 * layers as f64);
            for k in 0..layers {
                for j in 0..4 {
                    for i in 0..4 {
                        power.add(i, j, k, per_bin);
                    }
                }
            }
            temps.push(sim.solve(&power).unwrap().average_temperature());
        }
        assert!(temps[1] > temps[0]);
        assert!(temps[2] > temps[1]);
    }
}
