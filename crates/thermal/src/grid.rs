//! Steady-state finite-volume thermal simulation.
//!
//! The chip is discretized into `nx × ny` columns. Vertically there is one
//! node layer for the bulk substrate plus one per device layer. Adjacent
//! nodes exchange heat through conduction conductances `G = k·A/d`; the
//! substrate couples to ambient through the series of half its own
//! conduction and the heat-sink convective film, and the remaining faces
//! carry a weak natural-convection film. The resulting conductance matrix
//! is symmetric positive definite, and `G·ΔT = P` is solved with
//! Jacobi-preconditioned conjugate gradients.

use crate::{LayerStack, PowerMap, ThermalError};

/// Steady-state temperature solution over the simulation grid.
#[derive(Clone, PartialEq, Debug)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    /// Device layers only (substrate excluded).
    nz: usize,
    ambient: f64,
    /// Absolute temperatures of device-layer nodes, °C,
    /// `(k, j, i)` row-major.
    values: Vec<f64>,
}

impl TemperatureField {
    /// Grid dimensions `(nx, ny, num_device_layers)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// The ambient temperature the rise is measured against, °C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Temperature of device-layer node `(i, j, layer)`, °C.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn at(&self, i: usize, j: usize, layer: usize) -> f64 {
        assert!(i < self.nx && j < self.ny && layer < self.nz);
        self.values[(layer * self.ny + j) * self.nx + i]
    }

    /// Mean temperature over all device-layer nodes, °C.
    pub fn average_temperature(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum device-layer node temperature, °C.
    pub fn max_temperature(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature of one device layer, °C.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_average(&self, layer: usize) -> f64 {
        assert!(layer < self.nz);
        let n = self.nx * self.ny;
        self.values[layer * n..(layer + 1) * n].iter().sum::<f64>() / n as f64
    }

    /// Samples the field at a physical position (clamped to the chip).
    pub fn sample(&self, x: f64, y: f64, layer: usize, width: f64, depth: f64) -> f64 {
        let i = ((x / width * self.nx as f64).floor() as isize).clamp(0, self.nx as isize - 1);
        let j = ((y / depth * self.ny as f64).floor() as isize).clamp(0, self.ny as isize - 1);
        self.at(i as usize, j as usize, layer.min(self.nz - 1))
    }
}

/// Finite-volume steady-state simulator for one chip geometry.
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalSimulator {
    stack: LayerStack,
    width: f64,
    depth: f64,
    nx: usize,
    ny: usize,
    /// Total node layers = device layers + 1 (substrate at k = 0).
    nz_total: usize,
    /// Conductances, precomputed per direction (uniform grid):
    /// lateral x/y per node layer, vertical between node layers, and
    /// boundary films.
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// `gz[k]` couples node layer `k` to `k + 1`.
    gz: Vec<f64>,
    /// Grounding conductance to ambient per node layer (bottom film on the
    /// substrate layer, weak top film on the topmost layer).
    gamb: Vec<f64>,
    /// Weak side films per node layer (applied on boundary columns).
    gside: Vec<f64>,
}

impl ThermalSimulator {
    /// Creates a simulator for a `width × depth` chip with the given stack,
    /// discretized into `nx × ny` columns.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive
    /// footprint, grid, or stack parameter.
    pub fn new(
        stack: LayerStack,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> crate::Result<Self> {
        stack.validate()?;
        for (name, value) in [
            ("chip width", width),
            ("chip depth", depth),
            ("nx", nx as f64),
            ("ny", ny as f64),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        let nz_total = stack.num_layers + 1;
        let dx = width / nx as f64;
        let dy = depth / ny as f64;
        let k = stack.conductivity;
        let area_xy = dx * dy;

        // Node-layer thicknesses and conductivities: the bulk substrate
        // node (k = 0) conducts at silicon conductivity; device layers use
        // the stack's effective conductivity.
        let k_sub = stack.substrate_conductivity;
        let mut tz = Vec::with_capacity(nz_total);
        let mut kz = Vec::with_capacity(nz_total);
        tz.push(stack.substrate_thickness);
        kz.push(k_sub);
        for _ in 0..stack.num_layers {
            tz.push(stack.layer_thickness);
            kz.push(k);
        }

        let gx: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dy * t) / dx)
            .collect();
        let gy: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dx * t) / dy)
            .collect();
        let mut gz = Vec::with_capacity(nz_total - 1);
        for kk in 0..nz_total - 1 {
            // Series of: half of layer kk at its conductivity, the bonding
            // dielectric (counted at stack conductivity), half of kk + 1.
            let r = tz[kk] / (2.0 * kz[kk])
                + stack.interlayer_thickness / k
                + tz[kk + 1] / (2.0 * kz[kk + 1]);
            gz.push(area_xy / r);
        }

        let h_sink = stack.heat_sink.convection_coefficient;
        let h_side = stack.side_convection_coefficient;
        let mut gamb = vec![0.0; nz_total];
        // Bottom: half the substrate conduction in series with the sink film.
        gamb[0] = area_xy / (tz[0] / 2.0 / k_sub + 1.0 / h_sink);
        // Top: half the top layer in series with the weak film.
        gamb[nz_total - 1] += area_xy / (tz[nz_total - 1] / 2.0 / k + 1.0 / h_side);
        // Side films per layer, applied along boundary columns.
        let gside: Vec<f64> = tz
            .iter()
            .map(|&t| {
                // Use the mean of the two side areas; the film dominates.
                let area = t * (dx + dy) / 2.0;
                area / (1.0 / h_side)
            })
            .collect();

        Ok(Self {
            stack,
            width,
            depth,
            nx,
            ny,
            nz_total,
            gx,
            gy,
            gz,
            gamb,
            gside,
        })
    }

    /// The layer stack being simulated.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Chip footprint `(width, depth)`, meters.
    pub fn footprint(&self) -> (f64, f64) {
        (self.width, self.depth)
    }

    /// Grid dimensions the power map must match: `(nx, ny, num_layers)`.
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.stack.num_layers)
    }

    #[inline]
    fn node(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.ny + j) * self.nx + i
    }

    /// Applies the conductance matrix: `out = G · t`.
    fn apply(&self, t: &[f64], out: &mut [f64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz_total);
        out.fill(0.0);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let n = self.node(i, j, k);
                    let tn = t[n];
                    let mut diag = self.gamb[k];
                    let mut acc = 0.0;
                    if i + 1 < nx {
                        let m = n + 1;
                        diag += self.gx[k];
                        acc += self.gx[k] * t[m];
                    } else {
                        diag += self.gside[k];
                    }
                    if i > 0 {
                        let m = n - 1;
                        diag += self.gx[k];
                        acc += self.gx[k] * t[m];
                    } else {
                        diag += self.gside[k];
                    }
                    if j + 1 < ny {
                        let m = n + nx;
                        diag += self.gy[k];
                        acc += self.gy[k] * t[m];
                    } else {
                        diag += self.gside[k];
                    }
                    if j > 0 {
                        let m = n - nx;
                        diag += self.gy[k];
                        acc += self.gy[k] * t[m];
                    } else {
                        diag += self.gside[k];
                    }
                    if k + 1 < nz {
                        let m = n + nx * ny;
                        diag += self.gz[k];
                        acc += self.gz[k] * t[m];
                    }
                    if k > 0 {
                        let m = n - nx * ny;
                        diag += self.gz[k - 1];
                        acc += self.gz[k - 1] * t[m];
                    }
                    out[n] = diag * tn - acc;
                }
            }
        }
    }

    /// Diagonal of the conductance matrix (for Jacobi preconditioning).
    fn diagonal(&self) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz_total);
        let mut diag = vec![0.0; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let n = self.node(i, j, k);
                    let mut d = self.gamb[k];
                    d += if i + 1 < nx { self.gx[k] } else { self.gside[k] };
                    d += if i > 0 { self.gx[k] } else { self.gside[k] };
                    d += if j + 1 < ny { self.gy[k] } else { self.gside[k] };
                    d += if j > 0 { self.gy[k] } else { self.gside[k] };
                    if k + 1 < nz {
                        d += self.gz[k];
                    }
                    if k > 0 {
                        d += self.gz[k - 1];
                    }
                    diag[n] = d;
                }
            }
        }
        diag
    }

    /// Solves for the steady-state temperature field produced by `power`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] if the power map grid differs
    /// from [`grid_dims`](Self::grid_dims), or
    /// [`ThermalError::SolverDiverged`] if CG fails to converge (which for
    /// an SPD conductance matrix indicates pathological parameters).
    pub fn solve(&self, power: &PowerMap) -> crate::Result<TemperatureField> {
        if power.dims() != self.grid_dims() {
            return Err(ThermalError::GridMismatch {
                expected: self.grid_dims(),
                found: power.dims(),
            });
        }
        let n = self.nx * self.ny * self.nz_total;
        // Right-hand side: device layer l feeds node layer l + 1.
        let mut rhs = vec![0.0; n];
        let dev_nodes = self.nx * self.ny;
        rhs[dev_nodes..].copy_from_slice(power.values());

        let t_rise = self.conjugate_gradient(&rhs)?;
        let ambient = self.stack.heat_sink.ambient;
        let values: Vec<f64> = t_rise[dev_nodes..].iter().map(|dt| ambient + dt).collect();
        Ok(TemperatureField {
            nx: self.nx,
            ny: self.ny,
            nz: self.stack.num_layers,
            ambient,
            values,
        })
    }

    /// Jacobi-preconditioned CG on `G·x = b`.
    fn conjugate_gradient(&self, b: &[f64]) -> crate::Result<Vec<f64>> {
        let n = b.len();
        let diag = self.diagonal();
        let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = dot(&r, &z);
        let b_norm = dot(b, b).sqrt();
        if b_norm == 0.0 {
            return Ok(x);
        }
        let tol = 1.0e-10 * b_norm;
        let max_iter = 20 * n + 200;
        let mut ap = vec![0.0; n];

        for _ in 0..max_iter {
            self.apply(&p, &mut ap);
            let pap = dot(&p, &ap);
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let r_norm = dot(&r, &r).sqrt();
            if r_norm <= tol {
                return Ok(x);
            }
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        let residual = dot(&r, &r).sqrt() / b_norm;
        // Accept near-converged solutions; flag genuine divergence.
        if residual < 1.0e-6 {
            Ok(x)
        } else {
            Err(ThermalError::SolverDiverged {
                iterations: max_iter,
                residual,
            })
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator(layers: usize, nx: usize, ny: usize) -> ThermalSimulator {
        ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1.0e-3, 1.0e-3, nx, ny).unwrap()
    }

    /// Single-column sanity check against the series-resistance analytic
    /// solution: one device layer, 1×1 grid, all heat exits the sink path.
    #[test]
    fn single_column_matches_analytic_resistance() {
        let mut stack = LayerStack::mitll_0_18um(1);
        // Make the non-sink films negligible so the analytic path is exact.
        stack.side_convection_coefficient = 1.0e-9;
        let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 1, 1).unwrap();
        let mut power = PowerMap::new(1, 1, 1);
        power.add(0, 0, 0, 0.5);
        let field = sim.solve(&power).unwrap();

        let area = 1.0e-6; // 1 mm × 1 mm
        let k = stack.conductivity;
        let k_sub = stack.substrate_conductivity;
        // Node-center to ambient: layer0 half + bond at stack conductivity,
        // then the full substrate (half to its center, half below) at
        // silicon conductivity, then the sink film.
        let r = (stack.layer_thickness / 2.0 + stack.interlayer_thickness) / (k * area)
            + stack.substrate_thickness / (k_sub * area)
            + 1.0 / (stack.heat_sink.convection_coefficient * area);
        let expected = 0.5 * r;
        let got = field.at(0, 0, 0) - field.ambient();
        assert!(
            (got - expected).abs() < 1e-6 * expected.max(1.0),
            "ΔT = {got}, analytic {expected}"
        );
    }

    #[test]
    fn upper_layers_run_hotter() {
        let sim = simulator(4, 4, 4);
        let mut power = PowerMap::new(4, 4, 4);
        // Same uniform power on every layer.
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    power.add(i, j, k, 1.0e-3);
                }
            }
        }
        let field = sim.solve(&power).unwrap();
        for l in 0..3 {
            assert!(
                field.layer_average(l + 1) > field.layer_average(l),
                "layer {} ({}) should be cooler than layer {} ({})",
                l,
                field.layer_average(l),
                l + 1,
                field.layer_average(l + 1)
            );
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_field() {
        let sim = simulator(2, 6, 6);
        let mut power = PowerMap::new(6, 6, 2);
        power.add(2, 2, 1, 0.01);
        power.add(3, 3, 1, 0.01);
        power.add(2, 3, 1, 0.01);
        power.add(3, 2, 1, 0.01);
        let field = sim.solve(&power).unwrap();
        for l in 0..2 {
            for j in 0..6 {
                for i in 0..6 {
                    let a = field.at(i, j, l);
                    let b = field.at(5 - i, 5 - j, l);
                    assert!((a - b).abs() < 1e-9, "field must be 180° symmetric");
                }
            }
        }
    }

    #[test]
    fn superposition_holds() {
        // The system is linear: solve(p1 + p2) == solve(p1) + solve(p2) - ambient.
        let sim = simulator(2, 4, 4);
        let mut p1 = PowerMap::new(4, 4, 2);
        p1.add(0, 0, 0, 0.02);
        let mut p2 = PowerMap::new(4, 4, 2);
        p2.add(3, 3, 1, 0.05);
        let mut p12 = PowerMap::new(4, 4, 2);
        p12.add(0, 0, 0, 0.02);
        p12.add(3, 3, 1, 0.05);
        let f1 = sim.solve(&p1).unwrap();
        let f2 = sim.solve(&p2).unwrap();
        let f12 = sim.solve(&p12).unwrap();
        for l in 0..2 {
            for j in 0..4 {
                for i in 0..4 {
                    let lhs = f12.at(i, j, l) - f12.ambient();
                    let rhs = (f1.at(i, j, l) - f1.ambient()) + (f2.at(i, j, l) - f2.ambient());
                    assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1e-12));
                }
            }
        }
    }

    #[test]
    fn power_near_sink_is_cooler_than_power_far_from_sink() {
        let sim = simulator(4, 4, 4);
        let mut low = PowerMap::new(4, 4, 4);
        low.add(1, 1, 0, 0.05);
        let mut high = PowerMap::new(4, 4, 4);
        high.add(1, 1, 3, 0.05);
        let t_low = sim.solve(&low).unwrap().max_temperature();
        let t_high = sim.solve(&high).unwrap().max_temperature();
        assert!(
            t_high > t_low,
            "power on the top layer ({t_high}) must run hotter than near the sink ({t_low})"
        );
    }

    #[test]
    fn zero_power_is_ambient() {
        let sim = simulator(2, 3, 3);
        let field = sim.solve(&PowerMap::new(3, 3, 2)).unwrap();
        assert!((field.average_temperature() - field.ambient()).abs() < 1e-12);
        assert!((field.max_temperature() - field.ambient()).abs() < 1e-12);
    }

    #[test]
    fn grid_mismatch_is_reported() {
        let sim = simulator(2, 4, 4);
        let power = PowerMap::new(3, 4, 2);
        assert!(matches!(
            sim.solve(&power),
            Err(ThermalError::GridMismatch { .. })
        ));
    }

    #[test]
    fn sample_reads_the_right_bin() {
        let sim = simulator(1, 4, 4);
        let mut power = PowerMap::new(4, 4, 1);
        power.add(3, 0, 0, 0.1);
        let field = sim.solve(&power).unwrap();
        let sampled = field.sample(0.9e-3, 0.1e-3, 0, 1.0e-3, 1.0e-3);
        assert_eq!(sampled, field.at(3, 0, 0));
    }

    #[test]
    fn more_layers_same_total_power_runs_hotter() {
        // Stacking the same total power higher raises mean temperature —
        // the core 3D-IC thermal problem the paper motivates.
        let total = 0.2;
        let mut temps = Vec::new();
        for layers in [1usize, 2, 4] {
            let sim = simulator(layers, 4, 4);
            let mut power = PowerMap::new(4, 4, layers);
            let per_bin = total / (16.0 * layers as f64);
            for k in 0..layers {
                for j in 0..4 {
                    for i in 0..4 {
                        power.add(i, j, k, per_bin);
                    }
                }
            }
            temps.push(sim.solve(&power).unwrap().average_temperature());
        }
        assert!(temps[1] > temps[0]);
        assert!(temps[2] > temps[1]);
    }
}
