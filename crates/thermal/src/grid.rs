//! Steady-state finite-volume thermal simulation.
//!
//! The chip is discretized into `nx × ny` columns. Vertically there is one
//! node layer for the bulk substrate plus one per device layer. Adjacent
//! nodes exchange heat through conduction conductances `G = k·A/d`; the
//! substrate couples to ambient through the series of half its own
//! conduction and the heat-sink convective film, and the remaining faces
//! carry a weak natural-convection film. The resulting conductance matrix
//! is symmetric positive definite, and `G·ΔT = P` is solved with
//! preconditioned conjugate gradients.
//!
//! # Preconditioning
//!
//! Two preconditioners are available (see [`Preconditioner`]):
//!
//! * **Geometric multigrid** (the default): one V-cycle per CG iteration
//!   over a semi-coarsened hierarchy of rediscretized conductance grids
//!   with z-line red-black Gauss–Seidel smoothing and an exact coarsest
//!   solve (see the `multigrid` module). Iteration counts are nearly
//!   independent of grid resolution.
//! * **Jacobi**: the inverse diagonal. Cheap to set up, but CG iterations
//!   grow with grid resolution; kept as the comparison baseline and as
//!   the automatic fallback when the hierarchy cannot be built.
//!
//! # Parallelism and warm starting
//!
//! The CG kernels are fused, allocation-free, row-sliced passes (stencil
//! apply + `p·Ap` in one sweep; `r ← r − αAp` + `‖r‖²` in one sweep;
//! Jacobi `z = D⁻¹r` + `r·z` in one sweep) dispatched through the
//! `tvp-parallel` pool with a serial cutoff for small grids. Every
//! reduction folds chunk partials in chunk order, and chunk boundaries
//! are a pure function of the data length, so the solver is bitwise
//! identical for **every** thread count (including 1).
//!
//! Placement loops solve a slowly-drifting sequence of power maps, so
//! [`ThermalSolveContext`] carries the previous solution and the
//! preconditioner setup between [`ThermalSimulator::solve_with`] calls:
//! CG starts from the old field instead of zero —
//! [`CgStats::initial_residual`] records how close that start was — and
//! the multigrid hierarchy is built once per context, not per solve.

use crate::multigrid::MgHierarchy;
use crate::stack::LayerSpec;
use crate::{LayerStack, PowerMap, ThermalError};
use tvp_parallel as parallel;

/// Minimum elements per parallel chunk for elementwise CG kernels.
pub(crate) const ELEM_MIN_CHUNK: usize = 2048;
/// Minimum elements per chunk for chunked dot-product reductions.
const DOT_MIN_CHUNK: usize = 4096;
/// Below this many nodes the CG kernels skip pool dispatch and run their
/// chunks inline (bitwise identical either way): small grids lose more
/// to scheduling than they gain from parallelism.
pub(crate) const SERIAL_CUTOFF: usize = 32_768;

/// Steady-state temperature solution over the simulation grid.
#[derive(Clone, PartialEq, Debug)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    /// Device layers only (substrate excluded).
    nz: usize,
    ambient: f64,
    /// Absolute temperatures of device-layer nodes, °C,
    /// `(k, j, i)` row-major.
    values: Vec<f64>,
}

impl TemperatureField {
    /// Grid dimensions `(nx, ny, num_device_layers)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// The ambient temperature the rise is measured against, °C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Temperature of device-layer node `(i, j, layer)`, °C.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn at(&self, i: usize, j: usize, layer: usize) -> f64 {
        assert!(i < self.nx && j < self.ny && layer < self.nz);
        self.values[(layer * self.ny + j) * self.nx + i]
    }

    /// Mean temperature over all device-layer nodes, °C.
    pub fn average_temperature(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum device-layer node temperature, °C.
    pub fn max_temperature(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature of one device layer, °C.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_average(&self, layer: usize) -> f64 {
        assert!(layer < self.nz);
        let n = self.nx * self.ny;
        self.values[layer * n..(layer + 1) * n].iter().sum::<f64>() / n as f64
    }

    /// Samples the field at a physical position (clamped to the chip).
    pub fn sample(&self, x: f64, y: f64, layer: usize, width: f64, depth: f64) -> f64 {
        let i = ((x / width * self.nx as f64).floor() as isize).clamp(0, self.nx as isize - 1);
        let j = ((y / depth * self.ny as f64).floor() as isize).clamp(0, self.ny as isize - 1);
        self.at(i as usize, j as usize, layer.min(self.nz - 1))
    }

    /// Assembles a field from raw device-layer values (compact-model and
    /// test construction inside this crate).
    pub(crate) fn from_values(
        nx: usize,
        ny: usize,
        nz: usize,
        ambient: f64,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(values.len(), nx * ny * nz);
        Self {
            nx,
            ny,
            nz,
            ambient,
            values,
        }
    }

    /// Raw device-layer values, `(k, j, i)` row-major (crate-internal:
    /// the compact model patches fields incrementally).
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Raw device-layer values, `(k, j, i)` row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// The 7-point finite-volume conductance operator for one grid
/// resolution: the dimensions, the per-node-layer conductances, and the
/// precomputed matrix diagonal. [`ThermalSimulator`] holds one for the
/// evaluation grid; each multigrid level holds one rediscretized at its
/// own resolution.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct StencilOp {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    /// Total node layers = device layers + 1 (substrate at k = 0).
    pub(crate) nz: usize,
    /// Lateral conductances per node layer.
    pub(crate) gx: Vec<f64>,
    pub(crate) gy: Vec<f64>,
    /// `gz[k]` couples node layer `k` to `k + 1`.
    pub(crate) gz: Vec<f64>,
    /// Grounding conductance to ambient per node layer (bottom film on
    /// the substrate layer, weak top film on the topmost layer).
    pub(crate) gamb: Vec<f64>,
    /// Weak side films per node layer (applied on boundary columns).
    pub(crate) gside: Vec<f64>,
    /// Precomputed matrix diagonal, one entry per node.
    pub(crate) diag: Vec<f64>,
}

impl StencilOp {
    /// Discretizes the layer stack over a `width × depth` footprint at
    /// `nx × ny` lateral resolution. Conductances are physical (they
    /// scale with the cell areas of *this* resolution), so coarse
    /// multigrid operators built by rediscretization stay consistent
    /// with conservative (summing) residual restriction.
    ///
    /// `layers` optionally overrides the per-device-layer thickness and
    /// conductivity (heterogeneous stacks); `None` reproduces the uniform
    /// stack bit for bit. Layer data is resolution-independent, so the
    /// same slice serves every multigrid level.
    pub(crate) fn discretize(
        stack: &LayerStack,
        layers: Option<&[LayerSpec]>,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> Self {
        let nz = stack.num_layers + 1;
        let dx = width / nx as f64;
        let dy = depth / ny as f64;
        let k = stack.conductivity;
        let area_xy = dx * dy;

        // Node-layer thicknesses and conductivities: the bulk substrate
        // node (k = 0) conducts at silicon conductivity; device layers
        // use the stack's effective conductivity, or their own when a
        // heterogeneous override is given.
        let k_sub = stack.substrate_conductivity;
        let mut tz = Vec::with_capacity(nz);
        let mut kz = Vec::with_capacity(nz);
        tz.push(stack.substrate_thickness);
        kz.push(k_sub);
        match layers {
            Some(specs) => {
                for spec in specs.iter().take(stack.num_layers) {
                    tz.push(spec.thickness);
                    kz.push(spec.conductivity);
                }
            }
            None => {
                for _ in 0..stack.num_layers {
                    tz.push(stack.layer_thickness);
                    kz.push(k);
                }
            }
        }

        let gx: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dy * t) / dx)
            .collect();
        let gy: Vec<f64> = tz
            .iter()
            .zip(&kz)
            .map(|(&t, &kl)| kl * (dx * t) / dy)
            .collect();
        let mut gz = Vec::with_capacity(nz - 1);
        for kk in 0..nz - 1 {
            // Series of: half of layer kk at its conductivity, the bonding
            // dielectric (counted at stack conductivity), half of kk + 1.
            let r = tz[kk] / (2.0 * kz[kk])
                + stack.interlayer_thickness / k
                + tz[kk + 1] / (2.0 * kz[kk + 1]);
            gz.push(area_xy / r);
        }

        let h_sink = stack.heat_sink.convection_coefficient;
        let h_side = stack.side_convection_coefficient;
        let mut gamb = vec![0.0; nz];
        // Bottom: half the substrate conduction in series with the sink film.
        gamb[0] = area_xy / (tz[0] / 2.0 / k_sub + 1.0 / h_sink);
        // Top: half the top layer (at its own conductivity) in series
        // with the weak film.
        gamb[nz - 1] += area_xy / (tz[nz - 1] / 2.0 / kz[nz - 1] + 1.0 / h_side);
        // Side films per layer, applied along boundary columns.
        let gside: Vec<f64> = tz
            .iter()
            .map(|&t| {
                // Use the mean of the two side areas; the film dominates.
                let area = t * (dx + dy) / 2.0;
                area / (1.0 / h_side)
            })
            .collect();

        let mut op = Self {
            nx,
            ny,
            nz,
            gx,
            gy,
            gz,
            gamb,
            gside,
            diag: Vec::new(),
        };
        op.diag = op.build_diagonal();
        op
    }

    /// Total node count.
    pub(crate) fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn build_diagonal(&self) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut diag = vec![0.0; nx * ny * nz];
        let plane = nx * ny;
        for (n, slot) in diag.iter_mut().enumerate() {
            let k = n / plane;
            let rem = n % plane;
            let j = rem / nx;
            let i = rem % nx;
            let mut d = self.gamb[k];
            d += if i + 1 < nx {
                self.gx[k]
            } else {
                self.gside[k]
            };
            d += if i > 0 { self.gx[k] } else { self.gside[k] };
            d += if j + 1 < ny {
                self.gy[k]
            } else {
                self.gside[k]
            };
            d += if j > 0 { self.gy[k] } else { self.gside[k] };
            if k + 1 < nz {
                d += self.gz[k];
            }
            if k > 0 {
                d += self.gz[k - 1];
            }
            *slot = d;
        }
        diag
    }

    /// The fused row-sliced stencil kernel: writes `out[m] = (G·t)[n]`
    /// for nodes `n = start + m` and returns the partial `Σ t[n]·out[m]`
    /// over the range. Rows (constant `k, j`) are processed with their
    /// `y`/`z` neighbor terms and gating hoisted out of the inner loop;
    /// each node's arithmetic is a pure function of `t` and `n`, so the
    /// result is independent of how the range was chunked.
    fn apply_rows(&self, t: &[f64], start: usize, out: &mut [f64]) -> f64 {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;
        let end = start + out.len();
        let mut dot = 0.0;
        let mut n = start;
        while n < end {
            let k = n / plane;
            let rem = n % plane;
            let j = rem / nx;
            let i0 = rem % nx;
            let row_start = n - i0;
            let i1 = nx.min(i0 + (end - n));
            let gxk = self.gx[k];
            let gyk = self.gy[k];
            let y_up = j + 1 < ny;
            let y_dn = j > 0;
            let z_up = k + 1 < nz;
            let gz_up = if z_up { self.gz[k] } else { 0.0 };
            let gz_dn = if k > 0 { self.gz[k - 1] } else { 0.0 };
            for i in i0..i1 {
                let m = row_start + i;
                let ti = t[m];
                let mut acc = 0.0;
                if i + 1 < nx {
                    acc += gxk * t[m + 1];
                }
                if i > 0 {
                    acc += gxk * t[m - 1];
                }
                if y_up {
                    acc += gyk * t[m + nx];
                }
                if y_dn {
                    acc += gyk * t[m - nx];
                }
                if z_up {
                    acc += gz_up * t[m + plane];
                }
                if k > 0 {
                    acc += gz_dn * t[m - plane];
                }
                let o = self.diag[m] * ti - acc;
                out[m - start] = o;
                dot += o * ti;
            }
            n = row_start + i1;
        }
        dot
    }

    /// Applies the conductance matrix: `out = G · t`. Matrix-free and
    /// embarrassingly parallel; bitwise identical for any thread count.
    pub(crate) fn apply(&self, t: &[f64], out: &mut [f64]) {
        parallel::for_each_chunk_mut_cutoff(out, ELEM_MIN_CHUNK, SERIAL_CUTOFF, |start, chunk| {
            self.apply_rows(t, start, chunk);
        });
    }

    /// Fused `ap = G·p` and `p·ap` in one sweep. Chunk partials fold in
    /// chunk order — identical for every thread count.
    pub(crate) fn apply_dot(&self, p: &[f64], ap: &mut [f64]) -> f64 {
        parallel::map_chunks_mut_cutoff(ap, ELEM_MIN_CHUNK, SERIAL_CUTOFF, |start, chunk| {
            self.apply_rows(p, start, chunk)
        })
        .into_iter()
        .sum()
    }

    /// Fused residual: `r = b − G·x`, elementwise.
    pub(crate) fn residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        parallel::for_each_chunk_mut_cutoff(r, ELEM_MIN_CHUNK, SERIAL_CUTOFF, |start, chunk| {
            self.apply_rows(x, start, chunk);
            for (off, ri) in chunk.iter_mut().enumerate() {
                *ri = b[start + off] - *ri;
            }
        });
    }
}

/// Finite-volume steady-state simulator for one chip geometry.
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalSimulator {
    stack: LayerStack,
    /// Per-device-layer thickness/conductivity overrides (heterogeneous
    /// stacks); `None` = the uniform stack.
    layers: Option<Vec<LayerSpec>>,
    width: f64,
    depth: f64,
    op: StencilOp,
}

impl ThermalSimulator {
    /// Creates a simulator for a `width × depth` chip with the given stack,
    /// discretized into `nx × ny` columns.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive
    /// footprint, grid, or stack parameter.
    pub fn new(
        stack: LayerStack,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> crate::Result<Self> {
        Self::build(stack, None, width, depth, nx, ny)
    }

    /// [`new`](Self::new) with per-device-layer thickness/conductivity
    /// overrides: `layers[l]` describes device layer `l` (0 = closest to
    /// the heat sink). The scalar stack still supplies the substrate,
    /// bonding dielectric, and boundary films.
    ///
    /// # Errors
    ///
    /// Additionally to [`new`](Self::new)'s contract, returns
    /// [`ThermalError::InvalidParameter`] when the override count differs
    /// from `stack.num_layers` or any spec is non-positive/non-finite.
    pub fn with_layers(
        stack: LayerStack,
        layers: Vec<LayerSpec>,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> crate::Result<Self> {
        if layers.len() != stack.num_layers {
            return Err(ThermalError::InvalidParameter {
                name: "layer_specs (count must equal num_layers)",
                value: layers.len() as f64,
            });
        }
        for spec in &layers {
            spec.validate()?;
        }
        Self::build(stack, Some(layers), width, depth, nx, ny)
    }

    fn build(
        stack: LayerStack,
        layers: Option<Vec<LayerSpec>>,
        width: f64,
        depth: f64,
        nx: usize,
        ny: usize,
    ) -> crate::Result<Self> {
        stack.validate()?;
        for (name, value) in [
            ("chip width", width),
            ("chip depth", depth),
            ("nx", nx as f64),
            ("ny", ny as f64),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        let op = StencilOp::discretize(&stack, layers.as_deref(), width, depth, nx, ny);
        Ok(Self {
            stack,
            layers,
            width,
            depth,
            op,
        })
    }

    /// The layer stack being simulated.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// The per-layer overrides, when this simulator models a
    /// heterogeneous stack.
    pub fn layer_specs(&self) -> Option<&[LayerSpec]> {
        self.layers.as_deref()
    }

    /// Chip footprint `(width, depth)`, meters.
    pub fn footprint(&self) -> (f64, f64) {
        (self.width, self.depth)
    }

    /// Grid dimensions the power map must match: `(nx, ny, num_layers)`.
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        (self.op.nx, self.op.ny, self.stack.num_layers)
    }

    /// Creates a reusable solve context with the default preconditioner
    /// (geometric multigrid, automatic depth): the preconditioner is set
    /// up once, and each [`solve_with`](Self::solve_with) stores its
    /// solution for the next call to warm start from.
    pub fn context(&self) -> ThermalSolveContext {
        self.context_with(Preconditioner::default())
    }

    /// [`context`](Self::context) with an explicit preconditioner choice.
    ///
    /// When the multigrid hierarchy cannot be built for this geometry
    /// (more node layers than the line smoother supports), the context
    /// silently degrades to Jacobi preconditioning;
    /// [`ThermalSolveContext::preconditioner`] reports what was actually
    /// set up.
    pub fn context_with(&self, precond: Preconditioner) -> ThermalSolveContext {
        let setup_start = std::time::Instant::now();
        let inv_diag: Vec<f64> = self.op.diag.iter().map(|&d| 1.0 / d).collect();
        let mg = match precond {
            Preconditioner::Jacobi => None,
            Preconditioner::Multigrid { levels } => MgHierarchy::build(
                &self.stack,
                self.layers.as_deref(),
                self.width,
                self.depth,
                &self.op,
                levels,
            ),
        };
        let kind = if mg.is_some() {
            PrecondKind::Multigrid
        } else {
            PrecondKind::Jacobi
        };
        ThermalSolveContext {
            requested: precond,
            kind,
            setup_seconds: setup_start.elapsed().as_secs_f64(),
            inv_diag,
            mg,
            prev: None,
            stats: None,
        }
    }

    /// Solves for the steady-state temperature field produced by `power`,
    /// cold-starting from zero. Equivalent to
    /// [`solve_with`](Self::solve_with) on a fresh
    /// [`context`](Self::context).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] if the power map grid differs
    /// from [`grid_dims`](Self::grid_dims), or
    /// [`ThermalError::SolverDiverged`] if CG fails to converge (which for
    /// an SPD conductance matrix indicates pathological parameters).
    pub fn solve(&self, power: &PowerMap) -> crate::Result<TemperatureField> {
        let mut context = self.context();
        self.solve_with(power, &mut context)
    }

    /// Solves for the steady-state field, warm-starting CG from the
    /// previous solution held in `context` (if any) and caching this
    /// solution there for the next call. For the slowly-drifting power
    /// maps a placement loop produces, warm starts converge in a fraction
    /// of the cold iteration count; [`ThermalSolveContext::last_stats`]
    /// reports what happened, including how close the warm start was
    /// ([`CgStats::initial_residual`]).
    ///
    /// A context built for a different grid geometry is detected and
    /// rebuilt with the same requested preconditioner (losing the
    /// warm-start state) rather than misused.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        power: &PowerMap,
        context: &mut ThermalSolveContext,
    ) -> crate::Result<TemperatureField> {
        if power.dims() != self.grid_dims() {
            return Err(ThermalError::GridMismatch {
                expected: self.grid_dims(),
                found: power.dims(),
            });
        }
        let n = self.op.len();
        if context.inv_diag.len() != n {
            *context = self.context_with(context.requested);
        }
        // Right-hand side: device layer l feeds node layer l + 1.
        let mut rhs = vec![0.0; n];
        let dev_nodes = self.op.nx * self.op.ny;
        rhs[dev_nodes..].copy_from_slice(power.values());

        let x0 = context.prev.take();
        let (t_rise, stats) = self.conjugate_gradient(&rhs, context, x0)?;
        let ambient = self.stack.heat_sink.ambient;
        let values: Vec<f64> = t_rise[dev_nodes..].iter().map(|dt| ambient + dt).collect();
        context.stats = Some(stats);
        context.prev = Some(t_rise);
        Ok(TemperatureField {
            nx: self.op.nx,
            ny: self.op.ny,
            nz: self.stack.num_layers,
            ambient,
            values,
        })
    }

    /// Damped-Jacobi fallback solve for when conjugate gradients break
    /// down (or are injected to break down by a fault plan).
    ///
    /// The iteration `x ← x + ω·D⁻¹·(b − G·x)` converges unconditionally
    /// for the weakly diagonally dominant SPD conductance matrix, just
    /// slowly — so this is a *degraded* path: it runs a bounded number of
    /// sweeps and returns the best field it reached together with the
    /// residual, instead of erroring on slow convergence. Callers should
    /// flag the result as thermally degraded.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::GridMismatch`] if the power map grid differs
    /// from [`grid_dims`](Self::grid_dims). Non-convergence is *not* an
    /// error here; inspect [`FallbackStats::residual`].
    pub fn solve_fallback(
        &self,
        power: &PowerMap,
    ) -> crate::Result<(TemperatureField, FallbackStats)> {
        if power.dims() != self.grid_dims() {
            return Err(ThermalError::GridMismatch {
                expected: self.grid_dims(),
                found: power.dims(),
            });
        }
        let n = self.op.len();
        let dev_nodes = self.op.nx * self.op.ny;
        let mut rhs = vec![0.0; n];
        rhs[dev_nodes..].copy_from_slice(power.values());

        let diag = &self.op.diag;
        let b_norm = dot(&rhs, &rhs).sqrt();
        let ambient = self.stack.heat_sink.ambient;
        let mut x = vec![0.0; n];
        let mut stats = FallbackStats {
            iterations: 0,
            residual: 0.0,
        };
        if b_norm > 0.0 {
            const OMEGA: f64 = 0.8;
            const MAX_SWEEPS: usize = 20_000;
            let tol = 1.0e-8 * b_norm;
            let mut gx = vec![0.0; n];
            for sweep in 1..=MAX_SWEEPS {
                self.op.apply(&x, &mut gx);
                let mut r_sq = 0.0;
                for i in 0..n {
                    let r = rhs[i] - gx[i];
                    r_sq += r * r;
                    x[i] += OMEGA * r / diag[i];
                }
                let r_norm = r_sq.sqrt();
                stats.iterations = sweep;
                stats.residual = r_norm / b_norm;
                if r_norm <= tol {
                    break;
                }
            }
        }
        let values: Vec<f64> = x[dev_nodes..].iter().map(|dt| ambient + dt).collect();
        Ok((
            TemperatureField {
                nx: self.op.nx,
                ny: self.op.ny,
                nz: self.stack.num_layers,
                ambient,
                values,
            },
            stats,
        ))
    }

    /// Preconditioned CG on `G·x = b`, starting from `x0` (or zero),
    /// preconditioned by whatever `context` holds. Every kernel is fused
    /// and chunk-deterministic, so the solve is bitwise identical for
    /// any thread count.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SolverDiverged`] on breakdown: a non-positive or
    /// non-finite curvature `p·Gp` or preconditioned product `r·z`
    /// (impossible for exact SPD arithmetic, so it signals pathological
    /// parameters or an injected fault), or residual stagnation at the
    /// iteration cap.
    fn conjugate_gradient(
        &self,
        b: &[f64],
        context: &mut ThermalSolveContext,
        x0: Option<Vec<f64>>,
    ) -> crate::Result<(Vec<f64>, CgStats)> {
        let n = b.len();
        let warm_started = x0.is_some();
        let kind = context.kind;
        let setup_seconds = context.setup_seconds;
        let stats_at = |iterations: usize, residual: f64, initial_residual: f64| CgStats {
            iterations,
            residual,
            initial_residual,
            warm_started,
            preconditioner: kind,
            setup_seconds,
        };
        let b_norm = dot(b, b).sqrt();
        if b_norm == 0.0 {
            return Ok((vec![0.0; n], stats_at(0, 0.0, 0.0)));
        }
        let tol = 1.0e-10 * b_norm;
        let max_iter = 20 * n + 200;

        let (x, mut r) = match x0 {
            Some(x0) => {
                let mut r = vec![0.0; n];
                self.op.residual(&x0, b, &mut r);
                (x0, r)
            }
            None => (vec![0.0; n], b.to_vec()),
        };
        let mut x = x;
        let mut r_norm = dot(&r, &r).sqrt();
        let initial_residual = r_norm / b_norm;
        if r_norm <= tol {
            // Warm start already at the answer (identical power map).
            return Ok((x, stats_at(0, initial_residual, initial_residual)));
        }

        let mut z = vec![0.0; n];
        let mut rz = context.precondition(&r, &mut z);
        if !(rz.is_finite() && rz > 0.0) {
            return Err(ThermalError::SolverDiverged {
                iterations: 0,
                residual: initial_residual,
            });
        }
        let mut p = z.clone();
        let mut ap = vec![0.0; n];

        for iteration in 1..=max_iter {
            // Fused stencil apply + curvature dot in one sweep.
            let pap = self.op.apply_dot(&p, &mut ap);
            if !(pap.is_finite() && pap > 0.0) {
                return Err(ThermalError::SolverDiverged {
                    iterations: iteration,
                    residual: r_norm / b_norm,
                });
            }
            let alpha = rz / pap;
            parallel::for_each_chunk_mut_cutoff(
                &mut x,
                ELEM_MIN_CHUNK,
                SERIAL_CUTOFF,
                |start, xs| {
                    for (off, xi) in xs.iter_mut().enumerate() {
                        *xi += alpha * p[start + off];
                    }
                },
            );
            // Fused residual update + ‖r‖² in one sweep.
            let r_sq: f64 = parallel::map_chunks_mut_cutoff(
                &mut r,
                ELEM_MIN_CHUNK,
                SERIAL_CUTOFF,
                |start, rs| {
                    let mut sq = 0.0;
                    for (off, ri) in rs.iter_mut().enumerate() {
                        *ri -= alpha * ap[start + off];
                        sq += *ri * *ri;
                    }
                    sq
                },
            )
            .into_iter()
            .sum();
            r_norm = r_sq.sqrt();
            if r_norm <= tol {
                return Ok((x, stats_at(iteration, r_norm / b_norm, initial_residual)));
            }
            let rz_new = context.precondition(&r, &mut z);
            if !(rz_new.is_finite() && rz_new > 0.0) {
                return Err(ThermalError::SolverDiverged {
                    iterations: iteration,
                    residual: r_norm / b_norm,
                });
            }
            let beta = rz_new / rz;
            rz = rz_new;
            parallel::for_each_chunk_mut_cutoff(
                &mut p,
                ELEM_MIN_CHUNK,
                SERIAL_CUTOFF,
                |start, ps| {
                    for (off, pi) in ps.iter_mut().enumerate() {
                        *pi = z[start + off] + beta * *pi;
                    }
                },
            );
        }
        let residual = r_norm / b_norm;
        // Accept near-converged solutions; flag genuine divergence.
        if residual < 1.0e-6 {
            Ok((x, stats_at(max_iter, residual, initial_residual)))
        } else {
            Err(ThermalError::SolverDiverged {
                iterations: max_iter,
                residual,
            })
        }
    }
}

/// CG preconditioner selection for [`ThermalSimulator::context_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Preconditioner {
    /// Inverse-diagonal (Jacobi) preconditioning: cheap setup, but CG
    /// iteration counts grow with grid resolution.
    Jacobi,
    /// Geometric multigrid V-cycle preconditioning: near-grid-independent
    /// iteration counts. `levels = 0` coarsens automatically until the
    /// lateral grid is trivial; a non-zero value caps the hierarchy
    /// depth (clamped to what the geometry allows, minimum 1).
    Multigrid {
        /// Hierarchy depth cap; `0` = automatic.
        levels: usize,
    },
}

impl Default for Preconditioner {
    fn default() -> Self {
        Preconditioner::Multigrid { levels: 0 }
    }
}

/// Which preconditioner a context actually set up (multigrid requests
/// degrade to Jacobi when the hierarchy cannot be built).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrecondKind {
    /// Inverse-diagonal preconditioning.
    Jacobi,
    /// Geometric multigrid V-cycle preconditioning.
    Multigrid,
}

impl PrecondKind {
    /// Stable lowercase identifier (`"jacobi"` / `"multigrid"`), used in
    /// event streams and benchmark artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            PrecondKind::Jacobi => "jacobi",
            PrecondKind::Multigrid => "multigrid",
        }
    }
}

/// Convergence record of one damped-Jacobi fallback solve
/// ([`ThermalSimulator::solve_fallback`]).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FallbackStats {
    /// Damped-Jacobi sweeps executed.
    pub iterations: usize,
    /// Final residual norm relative to `‖b‖` (0 when the right-hand side
    /// was all zero).
    pub residual: f64,
}

/// Convergence record of one CG solve.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgStats {
    /// Iterations consumed (0 = the start vector already satisfied the
    /// tolerance).
    pub iterations: usize,
    /// Final residual norm relative to `‖b‖`.
    pub residual: f64,
    /// Residual norm relative to `‖b‖` *before* the first iteration:
    /// exactly 1 for a cold start, and a measure of how much the warm
    /// start already knew for a warm one (0 = it was the exact answer).
    pub initial_residual: f64,
    /// Whether the solve started from a previous solution.
    pub warm_started: bool,
    /// The preconditioner that actually ran.
    pub preconditioner: PrecondKind,
    /// Wall-clock seconds the context spent building the preconditioner
    /// (once per context, amortized over every solve through it).
    pub setup_seconds: f64,
}

/// Reusable state threaded between [`ThermalSimulator::solve_with`]
/// calls: the preconditioner (Jacobi diagonal or multigrid hierarchy,
/// built once), the previous solution vector (the warm start), and the
/// last solve's [`CgStats`].
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalSolveContext {
    /// What the caller asked for (used to rebuild on geometry change).
    requested: Preconditioner,
    /// What was actually set up.
    kind: PrecondKind,
    setup_seconds: f64,
    inv_diag: Vec<f64>,
    mg: Option<MgHierarchy>,
    /// Previous temperature-rise solution over all node layers.
    prev: Option<Vec<f64>>,
    stats: Option<CgStats>,
}

impl ThermalSolveContext {
    /// Statistics of the most recent solve through this context.
    pub fn last_stats(&self) -> Option<CgStats> {
        self.stats
    }

    /// The preconditioner this context actually set up (a multigrid
    /// request degrades to Jacobi when the hierarchy cannot be built).
    pub fn preconditioner(&self) -> PrecondKind {
        self.kind
    }

    /// Wall-clock seconds spent building the preconditioner.
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// Depth of the multigrid hierarchy actually built (finest level
    /// included), or `None` under Jacobi preconditioning.
    pub fn multigrid_levels(&self) -> Option<usize> {
        self.mg.as_ref().map(MgHierarchy::num_levels)
    }

    /// Drops the warm-start state (the next solve runs cold).
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Applies the preconditioner once: `z = M⁻¹·r`, returning `r·z`.
    /// One fused Jacobi sweep or one multigrid V-cycle — the unit of
    /// work CG pays per iteration, exposed for benchmarking and tests.
    ///
    /// # Panics
    ///
    /// Panics if `r` and `z` don't match the context's grid size.
    pub fn apply_preconditioner(&mut self, r: &[f64], z: &mut [f64]) -> f64 {
        assert_eq!(r.len(), self.inv_diag.len());
        assert_eq!(z.len(), self.inv_diag.len());
        self.precondition(r, z)
    }

    /// `z = M⁻¹·r` fused with the `r·z` reduction CG needs next.
    fn precondition(&mut self, r: &[f64], z: &mut [f64]) -> f64 {
        match &mut self.mg {
            Some(mg) => {
                mg.vcycle(r, z);
                dot(r, z)
            }
            None => {
                let inv_diag = &self.inv_diag;
                parallel::map_chunks_mut_cutoff(z, ELEM_MIN_CHUNK, SERIAL_CUTOFF, |start, zs| {
                    let mut partial = 0.0;
                    for (off, zi) in zs.iter_mut().enumerate() {
                        let i = start + off;
                        *zi = r[i] * inv_diag[i];
                        partial += r[i] * *zi;
                    }
                    partial
                })
                .into_iter()
                .sum()
            }
        }
    }
}

/// Dot product: chunk partials folded in fixed chunk order, with the
/// chunk boundaries a pure function of the length — bitwise identical
/// for every thread count, and dispatched serially below the cutoff.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    parallel::sum_chunks_cutoff(a.len(), DOT_MIN_CHUNK, SERIAL_CUTOFF, |range| {
        a[range.clone()]
            .iter()
            .zip(&b[range])
            .map(|(x, y)| x * y)
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator(layers: usize, nx: usize, ny: usize) -> ThermalSimulator {
        ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1.0e-3, 1.0e-3, nx, ny).unwrap()
    }

    const BOTH_PRECONDS: [Preconditioner; 2] = [
        Preconditioner::Jacobi,
        Preconditioner::Multigrid { levels: 0 },
    ];

    fn solve_pre(
        sim: &ThermalSimulator,
        power: &PowerMap,
        precond: Preconditioner,
    ) -> (TemperatureField, CgStats) {
        let mut context = sim.context_with(precond);
        let field = sim.solve_with(power, &mut context).unwrap();
        (field, context.last_stats().unwrap())
    }

    /// Single-column sanity check against the series-resistance analytic
    /// solution: one device layer, 1×1 grid, all heat exits the sink path.
    /// Runs against both preconditioners (a 1×1 lateral grid exercises
    /// the degenerate single-level multigrid hierarchy: CG is then
    /// preconditioned by the exact coarsest solve).
    #[test]
    fn single_column_matches_analytic_resistance() {
        let mut stack = LayerStack::mitll_0_18um(1);
        // Make the non-sink films negligible so the analytic path is exact.
        stack.side_convection_coefficient = 1.0e-9;
        let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 1, 1).unwrap();
        let mut power = PowerMap::new(1, 1, 1);
        power.add(0, 0, 0, 0.5);

        let area = 1.0e-6; // 1 mm × 1 mm
        let k = stack.conductivity;
        let k_sub = stack.substrate_conductivity;
        // Node-center to ambient: layer0 half + bond at stack conductivity,
        // then the full substrate (half to its center, half below) at
        // silicon conductivity, then the sink film.
        let r = (stack.layer_thickness / 2.0 + stack.interlayer_thickness) / (k * area)
            + stack.substrate_thickness / (k_sub * area)
            + 1.0 / (stack.heat_sink.convection_coefficient * area);
        let expected = 0.5 * r;
        for precond in BOTH_PRECONDS {
            let (field, stats) = solve_pre(&sim, &power, precond);
            let got = field.at(0, 0, 0) - field.ambient();
            assert!(
                (got - expected).abs() < 1e-6 * expected.max(1.0),
                "{precond:?}: ΔT = {got}, analytic {expected}"
            );
            assert!(stats.residual <= 1.0e-6, "{precond:?}: {stats:?}");
        }
    }

    #[test]
    fn upper_layers_run_hotter() {
        let sim = simulator(4, 4, 4);
        let mut power = PowerMap::new(4, 4, 4);
        // Same uniform power on every layer.
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    power.add(i, j, k, 1.0e-3);
                }
            }
        }
        let field = sim.solve(&power).unwrap();
        for l in 0..3 {
            assert!(
                field.layer_average(l + 1) > field.layer_average(l),
                "layer {} ({}) should be cooler than layer {} ({})",
                l,
                field.layer_average(l),
                l + 1,
                field.layer_average(l + 1)
            );
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_field() {
        let sim = simulator(2, 6, 6);
        let mut power = PowerMap::new(6, 6, 2);
        power.add(2, 2, 1, 0.01);
        power.add(3, 3, 1, 0.01);
        power.add(2, 3, 1, 0.01);
        power.add(3, 2, 1, 0.01);
        for precond in BOTH_PRECONDS {
            let (field, _) = solve_pre(&sim, &power, precond);
            for l in 0..2 {
                for j in 0..6 {
                    for i in 0..6 {
                        let a = field.at(i, j, l);
                        let b = field.at(5 - i, 5 - j, l);
                        assert!(
                            (a - b).abs() < 1e-9,
                            "{precond:?}: field must be 180° symmetric"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn superposition_holds() {
        // The system is linear: solve(p1 + p2) == solve(p1) + solve(p2) - ambient.
        let sim = simulator(2, 4, 4);
        let mut p1 = PowerMap::new(4, 4, 2);
        p1.add(0, 0, 0, 0.02);
        let mut p2 = PowerMap::new(4, 4, 2);
        p2.add(3, 3, 1, 0.05);
        let mut p12 = PowerMap::new(4, 4, 2);
        p12.add(0, 0, 0, 0.02);
        p12.add(3, 3, 1, 0.05);
        for precond in BOTH_PRECONDS {
            let (f1, _) = solve_pre(&sim, &p1, precond);
            let (f2, _) = solve_pre(&sim, &p2, precond);
            let (f12, _) = solve_pre(&sim, &p12, precond);
            for l in 0..2 {
                for j in 0..4 {
                    for i in 0..4 {
                        let lhs = f12.at(i, j, l) - f12.ambient();
                        let rhs = (f1.at(i, j, l) - f1.ambient()) + (f2.at(i, j, l) - f2.ambient());
                        assert!(
                            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1e-12),
                            "{precond:?}: superposition"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn power_near_sink_is_cooler_than_power_far_from_sink() {
        let sim = simulator(4, 4, 4);
        let mut low = PowerMap::new(4, 4, 4);
        low.add(1, 1, 0, 0.05);
        let mut high = PowerMap::new(4, 4, 4);
        high.add(1, 1, 3, 0.05);
        let t_low = sim.solve(&low).unwrap().max_temperature();
        let t_high = sim.solve(&high).unwrap().max_temperature();
        assert!(
            t_high > t_low,
            "power on the top layer ({t_high}) must run hotter than near the sink ({t_low})"
        );
    }

    #[test]
    fn zero_power_is_ambient() {
        let sim = simulator(2, 3, 3);
        let field = sim.solve(&PowerMap::new(3, 3, 2)).unwrap();
        assert!((field.average_temperature() - field.ambient()).abs() < 1e-12);
        assert!((field.max_temperature() - field.ambient()).abs() < 1e-12);
    }

    #[test]
    fn grid_mismatch_is_reported() {
        let sim = simulator(2, 4, 4);
        let power = PowerMap::new(3, 4, 2);
        assert!(matches!(
            sim.solve(&power),
            Err(ThermalError::GridMismatch { .. })
        ));
    }

    #[test]
    fn sample_reads_the_right_bin() {
        let sim = simulator(1, 4, 4);
        let mut power = PowerMap::new(4, 4, 1);
        power.add(3, 0, 0, 0.1);
        let field = sim.solve(&power).unwrap();
        let sampled = field.sample(0.9e-3, 0.1e-3, 0, 1.0e-3, 1.0e-3);
        assert_eq!(sampled, field.at(3, 0, 0));
    }

    /// A smooth, asymmetric power map exercising every grid bin.
    fn dense_power(nx: usize, ny: usize, layers: usize) -> PowerMap {
        let mut power = PowerMap::new(nx, ny, layers);
        for k in 0..layers {
            for j in 0..ny {
                for i in 0..nx {
                    let w = 1.0e-3 * (1.0 + i as f64 * 0.37 + j as f64 * 0.11 + k as f64 * 0.53);
                    power.add(i, j, k, w);
                }
            }
        }
        power
    }

    #[test]
    fn multigrid_field_matches_jacobi_field() {
        let sim = simulator(4, 32, 32);
        let power = dense_power(32, 32, 4);
        let (jac, jac_stats) = solve_pre(&sim, &power, Preconditioner::Jacobi);
        let (mg, mg_stats) = solve_pre(&sim, &power, Preconditioner::Multigrid { levels: 0 });
        assert_eq!(jac_stats.preconditioner, PrecondKind::Jacobi);
        assert_eq!(mg_stats.preconditioner, PrecondKind::Multigrid);
        // Both converged to the CG tolerance; the fields must agree in
        // max norm within (a safety factor of) that tolerance.
        let mut max_diff = 0.0f64;
        let mut max_temp = 0.0f64;
        for l in 0..4 {
            for j in 0..32 {
                for i in 0..32 {
                    max_diff = max_diff.max((jac.at(i, j, l) - mg.at(i, j, l)).abs());
                    max_temp = max_temp.max((jac.at(i, j, l) - jac.ambient()).abs());
                }
            }
        }
        assert!(
            max_diff <= 1e-6 * max_temp.max(1.0),
            "fields diverged: max |Δ| = {max_diff}, max rise = {max_temp}"
        );
    }

    #[test]
    fn multigrid_iterations_are_far_fewer_and_nearly_grid_independent() {
        // The acceptance case: 64×64 lateral grid, 8 device layers, cold
        // solve. Multigrid must need at most a fifth of Jacobi's CG
        // iterations.
        let sim =
            ThermalSimulator::new(LayerStack::mitll_0_18um(8), 1.0e-3, 1.0e-3, 64, 64).unwrap();
        let power = dense_power(64, 64, 8);
        let (_, jac) = solve_pre(&sim, &power, Preconditioner::Jacobi);
        let (_, mg) = solve_pre(&sim, &power, Preconditioner::Multigrid { levels: 0 });
        assert!(
            mg.iterations * 5 <= jac.iterations,
            "multigrid took {} iterations vs {} for Jacobi",
            mg.iterations,
            jac.iterations
        );

        // Near-flat scaling: the MG iteration count may not grow by more
        // than a few iterations from a grid a quarter the size.
        let small = simulator(8, 32, 32);
        let (_, mg_small) = solve_pre(
            &small,
            &dense_power(32, 32, 8),
            Preconditioner::Multigrid { levels: 0 },
        );
        assert!(
            mg.iterations <= mg_small.iterations + 10,
            "iterations grew {} → {} from 32×32 to 64×64",
            mg_small.iterations,
            mg.iterations
        );
    }

    #[test]
    fn explicit_level_cap_still_converges() {
        let sim = simulator(4, 32, 32);
        let power = dense_power(32, 32, 4);
        let (reference, _) = solve_pre(&sim, &power, Preconditioner::Jacobi);
        for levels in [1usize, 2, 3] {
            let (field, stats) = solve_pre(&sim, &power, Preconditioner::Multigrid { levels });
            assert_eq!(stats.preconditioner, PrecondKind::Multigrid);
            for l in 0..4 {
                for j in 0..32 {
                    for i in 0..32 {
                        let a = reference.at(i, j, l);
                        let b = field.at(i, j, l);
                        assert!(
                            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                            "levels={levels} at ({i},{j},{l}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cg_stats_report_preconditioner_and_setup_time() {
        let sim = simulator(2, 8, 8);
        let power = dense_power(8, 8, 2);
        let mut context = sim.context();
        assert_eq!(context.preconditioner(), PrecondKind::Multigrid);
        sim.solve_with(&power, &mut context).unwrap();
        let stats = context.last_stats().unwrap();
        assert_eq!(stats.preconditioner, PrecondKind::Multigrid);
        assert!(stats.setup_seconds >= 0.0);
        assert_eq!(stats.setup_seconds, context.setup_seconds());

        let mut jac = sim.context_with(Preconditioner::Jacobi);
        assert_eq!(jac.preconditioner(), PrecondKind::Jacobi);
        sim.solve_with(&power, &mut jac).unwrap();
        assert_eq!(
            jac.last_stats().unwrap().preconditioner,
            PrecondKind::Jacobi
        );
    }

    #[test]
    fn warm_start_matches_cold_solve() {
        for precond in BOTH_PRECONDS {
            let sim = simulator(4, 8, 8);
            let power = dense_power(8, 8, 4);
            let cold = {
                let mut context = sim.context_with(precond);
                sim.solve_with(&power, &mut context).unwrap()
            };

            let mut context = sim.context_with(precond);
            sim.solve_with(&power, &mut context).unwrap();
            let cold_stats = context.last_stats().unwrap();
            assert!(cold_stats.iterations > 0);
            assert!(!cold_stats.warm_started);
            assert_eq!(
                cold_stats.initial_residual, 1.0,
                "a cold start begins at the full right-hand side"
            );

            // Re-solving the identical map warm must agree with the cold
            // field to CG tolerance and converge (near-)instantly.
            let warm = sim.solve_with(&power, &mut context).unwrap();
            let stats = context.last_stats().unwrap();
            assert!(stats.warm_started);
            assert!(
                stats.initial_residual < 1.0e-6,
                "identical map: warm start is already the answer ({})",
                stats.initial_residual
            );
            assert!(
                stats.iterations < cold_stats.iterations / 4,
                "{precond:?}: warm solve of the same map took {} iterations vs {} cold",
                stats.iterations,
                cold_stats.iterations
            );
            for l in 0..4 {
                for j in 0..8 {
                    for i in 0..8 {
                        let c = cold.at(i, j, l);
                        let w = warm.at(i, j, l);
                        assert!(
                            (c - w).abs() <= 1e-6 * c.abs().max(1.0),
                            "{precond:?}: cold {c} vs warm {w} at ({i},{j},{l})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warm_start_saves_iterations_on_perturbed_power() {
        for precond in BOTH_PRECONDS {
            let sim = simulator(4, 8, 8);
            let base = dense_power(8, 8, 4);
            let mut perturbed = dense_power(8, 8, 4);
            // A small local drift, like one cell moving between solves.
            perturbed.add(3, 4, 2, 2.0e-4);
            perturbed.add(5, 1, 0, -1.0e-4);

            let cold_iters = {
                let mut context = sim.context_with(precond);
                sim.solve_with(&perturbed, &mut context).unwrap();
                context.last_stats().unwrap().iterations
            };

            let mut context = sim.context_with(precond);
            sim.solve_with(&base, &mut context).unwrap();
            let warm = sim.solve_with(&perturbed, &mut context).unwrap();
            let warm_stats = context.last_stats().unwrap();
            assert!(warm_stats.warm_started);
            // The previous solution really was used as x₀: the recorded
            // initial residual is far below a cold start's 1.0.
            assert!(
                warm_stats.initial_residual < 0.1,
                "{precond:?}: initial residual {} says x₀ was not the previous field",
                warm_stats.initial_residual
            );
            assert!(
                warm_stats.iterations < cold_iters,
                "{precond:?}: warm ({}) must beat cold ({cold_iters}) on a perturbed map",
                warm_stats.iterations
            );
            // And it is still the right answer.
            let (cold, _) = solve_pre(&sim, &perturbed, precond);
            for l in 0..4 {
                for j in 0..8 {
                    for i in 0..8 {
                        let c = cold.at(i, j, l);
                        let w = warm.at(i, j, l);
                        assert!((c - w).abs() <= 1e-6 * c.abs().max(1.0));
                    }
                }
            }
        }
    }

    #[test]
    fn context_reset_forgets_the_warm_start() {
        let sim = simulator(2, 4, 4);
        let power = dense_power(4, 4, 2);
        let mut context = sim.context();
        sim.solve_with(&power, &mut context).unwrap();
        context.reset();
        sim.solve_with(&power, &mut context).unwrap();
        assert!(!context.last_stats().unwrap().warm_started);
    }

    #[test]
    fn context_from_wrong_geometry_is_rebuilt() {
        let sim_a = simulator(2, 4, 4);
        let sim_b = simulator(4, 8, 8);
        let mut context = sim_a.context_with(Preconditioner::Jacobi);
        sim_a
            .solve_with(&dense_power(4, 4, 2), &mut context)
            .unwrap();
        // Same context against a different simulator: must not panic or
        // poison the solve, just run cold — and keep the preconditioner
        // the caller asked for.
        let field = sim_b
            .solve_with(&dense_power(8, 8, 4), &mut context)
            .unwrap();
        assert!(!context.last_stats().unwrap().warm_started);
        assert_eq!(context.preconditioner(), PrecondKind::Jacobi);
        assert!(field.max_temperature() > field.ambient());
    }

    #[test]
    fn solve_is_equivalent_across_thread_counts() {
        // Big enough that every kernel spans multiple chunks and clears
        // the serial cutoff, so the dispatched paths actually execute.
        for precond in BOTH_PRECONDS {
            let sim =
                ThermalSimulator::new(LayerStack::mitll_0_18um(8), 1.0e-3, 1.0e-3, 64, 64).unwrap();
            let power = dense_power(64, 64, 8);
            let solve = || {
                let mut context = sim.context_with(precond);
                sim.solve_with(&power, &mut context).unwrap()
            };
            let serial = tvp_parallel::with_threads(1, solve);
            for threads in [2usize, 4] {
                let parallel_field = tvp_parallel::with_threads(threads, solve);
                for l in 0..8 {
                    for j in 0..64 {
                        for i in 0..64 {
                            let s = serial.at(i, j, l);
                            let p = parallel_field.at(i, j, l);
                            // Chunk boundaries and fold order are pure
                            // functions of the data, so the fields agree
                            // bit for bit.
                            assert!(
                                s.to_bits() == p.to_bits(),
                                "{precond:?}: serial {s} vs {threads}-thread {p} at ({i},{j},{l})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn more_layers_same_total_power_runs_hotter() {
        // Stacking the same total power higher raises mean temperature —
        // the core 3D-IC thermal problem the paper motivates.
        let total = 0.2;
        let mut temps = Vec::new();
        for layers in [1usize, 2, 4] {
            let sim = simulator(layers, 4, 4);
            let mut power = PowerMap::new(4, 4, layers);
            let per_bin = total / (16.0 * layers as f64);
            for k in 0..layers {
                for j in 0..4 {
                    for i in 0..4 {
                        power.add(i, j, k, per_bin);
                    }
                }
            }
            temps.push(sim.solve(&power).unwrap().average_temperature());
        }
        assert!(temps[1] > temps[0]);
        assert!(temps[2] > temps[1]);
    }
}
