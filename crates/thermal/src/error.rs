//! Errors from thermal model construction and solving.

use std::error::Error;
use std::fmt;

/// Error returned by thermal model constructors and solvers.
#[derive(Clone, PartialEq, Debug)]
pub enum ThermalError {
    /// A geometric or material parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A power map's grid dimensions do not match the simulator's.
    GridMismatch {
        /// The simulator grid `(nx, ny, nz)`.
        expected: (usize, usize, usize),
        /// The power map grid `(nx, ny, nz)`.
        found: (usize, usize, usize),
    },
    /// The iterative solver failed to reach the tolerance.
    SolverDiverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the last iteration.
        residual: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidParameter { name, value } => {
                write!(f, "invalid thermal parameter `{name}` = {value}")
            }
            ThermalError::GridMismatch { expected, found } => write!(
                f,
                "power map grid {found:?} does not match simulator grid {expected:?}"
            ),
            ThermalError::SolverDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "conjugate gradient did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = ThermalError::InvalidParameter {
            name: "conductivity",
            value: -1.0,
        };
        assert!(e.to_string().contains("conductivity"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<ThermalError>();
    }
}
