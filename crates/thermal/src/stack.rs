//! The 3D-IC layer stack and heat-sink boundary description.

use crate::ThermalError;

/// Convective heat-sink boundary at the bottom face of the chip.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HeatSink {
    /// Convection coefficient, W/(m²·K). Table 2 uses 10⁶ (a forced-air
    /// sink attached through the package).
    pub convection_coefficient: f64,
    /// Ambient temperature, °C. Table 2 measures temperature rise above
    /// 0 °C ambient.
    pub ambient: f64,
}

impl Default for HeatSink {
    fn default() -> Self {
        Self {
            convection_coefficient: 1.0e6,
            ambient: 0.0,
        }
    }
}

/// Vertical build-up of a 3D IC: a bulk substrate at the bottom (heat-sink
/// side) carrying `num_layers` active device layers separated by bonding
/// dielectric. Device layer 0 is the closest to the heat sink.
///
/// Defaults follow Table 2 of the paper, which derives them from the
/// MIT Lincoln Labs 0.18 µm 3D FD-SOI process.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LayerStack {
    /// Number of active device layers (Table 2: 4).
    pub num_layers: usize,
    /// Thickness of each device layer, meters (Table 2: 5.7 µm).
    pub layer_thickness: f64,
    /// Thickness of the bonding dielectric between device layers, meters
    /// (Table 2: 0.7 µm).
    pub interlayer_thickness: f64,
    /// Bulk substrate thickness below layer 0, meters (Table 2: 500 µm).
    pub substrate_thickness: f64,
    /// Effective thermal conductivity of the *device stack* (thinned
    /// silicon layers plus bonding dielectric), W/(m·K) (Table 2: 10.2).
    /// The low value — dominated by the oxide bonds — is what makes the
    /// vertical position of power significant in 3D ICs.
    pub conductivity: f64,
    /// Thermal conductivity of the bulk silicon substrate, W/(m·K)
    /// (≈ 150 for silicon). The substrate conducts and spreads heat far
    /// better than the bonded stack above it.
    pub substrate_conductivity: f64,
    /// Convection coefficient of the weak films on the non-sink faces,
    /// W/(m²·K). Natural convection, ≈ 10; the sink dominates.
    pub side_convection_coefficient: f64,
    /// The heat sink at the bottom face.
    pub heat_sink: HeatSink,
}

/// Per-device-layer override of the stack's uniform geometry/material:
/// thickness and conductivity of one device layer. A `Vec<LayerSpec>` with
/// one entry per device layer (index 0 closest to the heat sink) describes
/// a *heterogeneous* stack — e.g. a thick low-κ memory layer bonded onto
/// thin logic layers — which the finite-volume discretization honors
/// exactly. The scalar [`LayerStack`] fields keep describing the uniform
/// default; the O(1) resistance model continues to use those.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LayerSpec {
    /// Thickness of this device layer, meters.
    pub thickness: f64,
    /// Thermal conductivity of this device layer, W/(m·K).
    pub conductivity: f64,
}

impl LayerSpec {
    /// Validates thickness and conductivity are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> crate::Result<()> {
        for (name, value) in [
            ("layer_spec.thickness", self.thickness),
            ("layer_spec.conductivity", self.conductivity),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

impl LayerStack {
    /// Creates the Table 2 stack with the given number of device layers.
    pub fn mitll_0_18um(num_layers: usize) -> Self {
        Self {
            num_layers,
            layer_thickness: 5.7e-6,
            interlayer_thickness: 0.7e-6,
            substrate_thickness: 500.0e-6,
            conductivity: 10.2,
            substrate_conductivity: 150.0,
            side_convection_coefficient: 10.0,
            heat_sink: HeatSink::default(),
        }
    }

    /// Validates all geometric and material parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the first
    /// non-positive or non-finite parameter.
    pub fn validate(&self) -> crate::Result<()> {
        let checks: [(&'static str, f64); 7] = [
            ("num_layers", self.num_layers as f64),
            ("layer_thickness", self.layer_thickness),
            ("interlayer_thickness", self.interlayer_thickness),
            ("substrate_thickness", self.substrate_thickness),
            ("conductivity", self.conductivity),
            ("substrate_conductivity", self.substrate_conductivity),
            (
                "convection_coefficient",
                self.heat_sink.convection_coefficient,
            ),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Vertical pitch between consecutive device layers, meters.
    pub fn layer_pitch(&self) -> f64 {
        self.layer_thickness + self.interlayer_thickness
    }

    /// Height of the center of device layer `layer` above the bottom
    /// (heat-sink) face of the chip, meters.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= num_layers`.
    pub fn layer_center_z(&self, layer: usize) -> f64 {
        assert!(layer < self.num_layers, "layer {layer} out of range");
        self.substrate_thickness + layer as f64 * self.layer_pitch() + self.layer_thickness / 2.0
    }

    /// Total chip height from the heat-sink face to the top face, meters.
    pub fn total_height(&self) -> f64 {
        self.substrate_thickness + self.num_layers as f64 * self.layer_pitch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let s = LayerStack::mitll_0_18um(4);
        assert_eq!(s.num_layers, 4);
        assert!((s.layer_thickness - 5.7e-6).abs() < 1e-12);
        assert!((s.conductivity - 10.2).abs() < 1e-12);
        assert!((s.heat_sink.convection_coefficient - 1.0e6).abs() < 1e-6);
        s.validate().unwrap();
    }

    #[test]
    fn layer_geometry() {
        let s = LayerStack::mitll_0_18um(4);
        let pitch = 6.4e-6;
        assert!((s.layer_pitch() - pitch).abs() < 1e-12);
        assert!((s.layer_center_z(0) - (500.0e-6 + 2.85e-6)).abs() < 1e-12);
        assert!((s.layer_center_z(1) - s.layer_center_z(0) - pitch).abs() < 1e-12);
        assert!((s.total_height() - (500.0e-6 + 4.0 * pitch)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut s = LayerStack::mitll_0_18um(4);
        s.conductivity = 0.0;
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("conductivity"));
        let mut s = LayerStack::mitll_0_18um(0);
        assert!(s.validate().is_err());
        s.num_layers = 2;
        s.layer_thickness = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_z_bounds_checked() {
        LayerStack::mitll_0_18um(2).layer_center_z(2);
    }
}
