//! Cross-validation between the two thermal fidelities: the O(1)
//! straight-path resistance model the placer optimizes against, and the
//! finite-volume simulator that scores the final placement. The paper's
//! premise is that the cheap model is a usable proxy for the expensive
//! one; these tests pin down in what sense that holds here.

use tvp_thermal::{LayerStack, PowerMap, ResistanceModel, ThermalSimulator};

/// Straight-path ΔT must upper-bound the simulated ΔT (the simulator
/// spreads heat laterally, which the single-column model cannot), while
/// staying within a sane factor — otherwise it would be useless as a
/// proxy.
#[test]
fn straight_path_upper_bounds_simulation_within_reason() {
    let stack = LayerStack::mitll_0_18um(4);
    let (width, depth) = (1.0e-3, 1.0e-3);
    let (nx, ny) = (16usize, 16usize);
    let sim = ThermalSimulator::new(stack, width, depth, nx, ny).unwrap();
    let model = ResistanceModel::new(stack, width, depth).unwrap();
    let bin_area = (width / nx as f64) * (depth / ny as f64);
    let p = 0.01;

    for layer in 0..4 {
        let mut power = PowerMap::new(nx, ny, 4);
        power.add(8, 8, layer, p);
        let field = sim.solve(&power).unwrap();
        let simulated = field.at(8, 8, layer) - field.ambient();
        let predicted = p * model.cell_resistance(width / 2.0, depth / 2.0, layer, bin_area);
        assert!(
            predicted >= simulated * 0.99,
            "layer {layer}: straight-path {predicted} should bound simulated {simulated}"
        );
        assert!(
            predicted <= simulated * 50.0,
            "layer {layer}: proxy uselessly loose ({predicted} vs {simulated})"
        );
    }
}

/// The models must agree on *ordering*: if the resistance model says
/// position A is thermally worse than position B, the simulator must
/// agree. This monotone consistency is all the placer actually relies on.
#[test]
fn models_agree_on_layer_ordering() {
    let stack = LayerStack::mitll_0_18um(4);
    let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 8, 8).unwrap();
    let model = ResistanceModel::new(stack, 1.0e-3, 1.0e-3).unwrap();
    let bin_area = (1.0e-3 / 8.0f64).powi(2);

    let mut previous_sim = 0.0;
    let mut previous_model = 0.0;
    for layer in 0..4 {
        let mut power = PowerMap::new(8, 8, 4);
        power.add(4, 4, layer, 0.02);
        let field = sim.solve(&power).unwrap();
        let simulated = field.at(4, 4, layer) - field.ambient();
        let predicted = model.cell_resistance(0.5e-3, 0.5e-3, layer, bin_area);
        assert!(simulated > previous_sim, "simulator: layer {layer} hotter");
        assert!(predicted > previous_model, "model: layer {layer} worse");
        previous_sim = simulated;
        previous_model = predicted;
    }
}

/// The linearized vertical profile used by the TRR nets must have the
/// same sign and comparable per-layer step as the simulator's measured
/// layer-to-layer temperature difference for a fixed power.
#[test]
fn vertical_profile_step_tracks_simulated_layer_step() {
    let stack = LayerStack::mitll_0_18um(4);
    let sim = ThermalSimulator::new(stack, 1.0e-3, 1.0e-3, 8, 8).unwrap();
    let model = ResistanceModel::new(stack, 1.0e-3, 1.0e-3).unwrap();
    let bin_area = (1.0e-3 / 8.0f64).powi(2);
    let p = 0.02;

    let rise_at = |layer: usize| {
        let mut power = PowerMap::new(8, 8, 4);
        power.add(4, 4, layer, p);
        let field = sim.solve(&power).unwrap();
        field.at(4, 4, layer) - field.ambient()
    };
    let sim_step = (rise_at(3) - rise_at(0)) / 3.0;
    let profile = model.vertical_profile(bin_area);
    let model_step = profile.slope * stack.layer_pitch() * p;
    assert!(sim_step > 0.0 && model_step > 0.0);
    let ratio = model_step / sim_step;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "per-layer steps should be commensurate: model {model_step}, sim {sim_step}"
    );
}
