//! Property-based tests for the compact analytical thermal tier: the
//! documented error contract against the multigrid ground truth on
//! random power maps, and the structural identities ([`f_kernel`]
//! symmetries, exact superposition) the incremental pricing path relies
//! on.

use proptest::prelude::*;
use tvp_thermal::compact_params::{
    canonical, canonical_simulator, CANONICAL_FOOTPRINT, CANONICAL_GRID, CANONICAL_LAYERS,
    CROSS_MODEL_GATE,
};
use tvp_thermal::{f_kernel, CompactModel, PowerMap};

fn canonical_model() -> CompactModel {
    let (width, depth) = CANONICAL_FOOTPRINT;
    let (nx, ny) = CANONICAL_GRID;
    let ambient = canonical_simulator().unwrap().stack().heat_sink.ambient;
    CompactModel::new(canonical(), width, depth, nx, ny, ambient)
        .expect("canonical parameters build")
}

/// A random sparse power map on the canonical grid: 1–10 sources, each
/// up to 50 mW, scattered over all bins and layers.
fn power_map_strategy() -> impl Strategy<Value = PowerMap> {
    let (nx, ny) = CANONICAL_GRID;
    prop::collection::vec(
        (0..nx, 0..ny, 0..CANONICAL_LAYERS, 1.0e-4f64..5.0e-2),
        1..10,
    )
    .prop_map(move |sources| {
        let mut map = PowerMap::new(nx, ny, CANONICAL_LAYERS);
        for (i, j, k, watts) in sources {
            map.add(i, j, k, watts);
        }
        map
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pinned canonical fit honors [`CROSS_MODEL_GATE`] not just on
    /// the fit impulses but on arbitrary superposed power maps: the max
    /// |compact − multigrid| ΔT stays under the gate relative to the
    /// peak multigrid rise. This is the error contract the per-move
    /// pricing tier is trusted under.
    #[test]
    fn compact_tracks_multigrid_on_random_power_maps(power in power_map_strategy()) {
        let sim = canonical_simulator().unwrap();
        let model = canonical_model();
        let truth = sim.solve(&power).unwrap();
        let compact = model.evaluate(&power).unwrap();

        let (nx, ny) = CANONICAL_GRID;
        let ambient = truth.ambient();
        let mut peak_rise = 0.0_f64;
        let mut max_err = 0.0_f64;
        for l in 0..CANONICAL_LAYERS {
            for j in 0..ny {
                for i in 0..nx {
                    peak_rise = peak_rise.max(truth.at(i, j, l) - ambient);
                    max_err = max_err.max((compact.at(i, j, l) - truth.at(i, j, l)).abs());
                }
            }
        }
        prop_assert!(peak_rise > 0.0, "a powered map must heat something");
        prop_assert!(
            max_err <= CROSS_MODEL_GATE * peak_rise,
            "compact error {max_err:.3e} K exceeds gate {:.3e} K ({} of peak rise {peak_rise:.3e} K)",
            CROSS_MODEL_GATE * peak_rise,
            max_err / peak_rise,
        );
    }

    /// [`f_kernel`] is odd in each lateral argument and symmetric under
    /// swapping them — the identities that make the four-corner kernel
    /// sum decay to zero away from the source.
    #[test]
    fn f_kernel_is_odd_and_swap_symmetric(
        a in 0.01f64..5.0,
        b in -10.0f64..10.0,
        c in -10.0f64..10.0,
    ) {
        let f = f_kernel(a, b, c);
        prop_assert!(f.is_finite());
        let tol = 1e-9 * f.abs().max(1e-12);
        prop_assert!((f_kernel(a, -b, c) + f).abs() <= tol, "not odd in b");
        prop_assert!((f_kernel(a, b, -c) + f).abs() <= tol, "not odd in c");
        prop_assert!((f_kernel(a, c, b) - f).abs() <= tol, "not swap-symmetric");
    }

    /// The model is exactly linear in power (no bias term): evaluating a
    /// sum of maps equals summing the individual rises, and
    /// [`CompactModel::add_point_source`] reproduces a fresh evaluation
    /// of the augmented map. Both identities are what lets the move
    /// pricer maintain its frozen field incrementally.
    #[test]
    fn superposition_is_exact(
        base in power_map_strategy(),
        i in 0..CANONICAL_GRID.0,
        j in 0..CANONICAL_GRID.1,
        layer in 0..CANONICAL_LAYERS,
        watts in 1.0e-4f64..5.0e-2,
    ) {
        let (nx, ny) = CANONICAL_GRID;
        let (width, depth) = CANONICAL_FOOTPRINT;
        let model = canonical_model();

        let mut augmented = base.clone();
        augmented.add(i, j, layer, watts);
        let direct = model.evaluate(&augmented).unwrap();

        // Field-level superposition: rise(base + impulse) = rise(base)
        // + rise(impulse), bin by bin.
        let base_field = model.evaluate(&base).unwrap();
        let mut impulse = PowerMap::new(nx, ny, CANONICAL_LAYERS);
        impulse.add(i, j, layer, watts);
        let impulse_field = model.evaluate(&impulse).unwrap();
        let ambient = base_field.ambient();
        for l in 0..CANONICAL_LAYERS {
            for jj in 0..ny {
                for ii in 0..nx {
                    let summed = (base_field.at(ii, jj, l) - ambient)
                        + (impulse_field.at(ii, jj, l) - ambient);
                    let want = direct.at(ii, jj, l) - ambient;
                    prop_assert!(
                        (summed - want).abs() <= 1e-9 * want.abs().max(1e-12),
                        "superposition broke at ({ii},{jj},{l}): {summed} vs {want}"
                    );
                }
            }
        }

        // Incremental update path: adding the source into the cached
        // base field must agree with the direct evaluation.
        let mut updated = model.evaluate(&base).unwrap();
        let x = (i as f64 + 0.5) * width / nx as f64;
        let y = (j as f64 + 0.5) * depth / ny as f64;
        model.add_point_source(&mut updated, x, y, layer, watts);
        for l in 0..CANONICAL_LAYERS {
            for jj in 0..ny {
                for ii in 0..nx {
                    let got = updated.at(ii, jj, l);
                    let want = direct.at(ii, jj, l);
                    prop_assert!(
                        (got - want).abs() <= 1e-9 * (want - ambient).abs().max(1e-12),
                        "add_point_source diverged at ({ii},{jj},{l}): {got} vs {want}"
                    );
                }
            }
        }
    }
}
