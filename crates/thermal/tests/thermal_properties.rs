//! Property-based tests for the thermal models.

use proptest::prelude::*;
use tvp_thermal::{
    LayerStack, PowerMap, PrecondKind, Preconditioner, ResistanceModel, ThermalSimulator,
};

fn stack_strategy() -> impl Strategy<Value = LayerStack> {
    (1usize..6, 1.0f64..200.0, 50.0f64..300.0).prop_map(|(layers, k, k_sub)| {
        let mut stack = LayerStack::mitll_0_18um(layers);
        stack.conductivity = k;
        stack.substrate_conductivity = k_sub;
        stack
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn resistance_is_positive_and_monotone_in_layer(
        stack in stack_strategy(),
        area_exp in -13.0f64..-9.0,
    ) {
        let area = 10.0f64.powf(area_exp);
        let model = ResistanceModel::new(stack, 1e-3, 1e-3).unwrap();
        let mut last = 0.0;
        for layer in 0..stack.num_layers {
            let r = model.cell_resistance(0.5e-3, 0.5e-3, layer, area);
            prop_assert!(r.is_finite() && r > 0.0);
            prop_assert!(r >= last, "layer {layer}: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn temperatures_scale_linearly_with_power(
        stack in stack_strategy(),
        watts in 1.0e-4f64..1.0,
        i in 0usize..4,
        j in 0usize..4,
    ) {
        let sim = ThermalSimulator::new(stack, 1e-3, 1e-3, 4, 4).unwrap();
        let layer = stack.num_layers - 1;
        let mut p1 = PowerMap::new(4, 4, stack.num_layers);
        p1.add(i, j, layer, watts);
        let mut p2 = PowerMap::new(4, 4, stack.num_layers);
        p2.add(i, j, layer, watts * 2.0);
        let f1 = sim.solve(&p1).unwrap();
        let f2 = sim.solve(&p2).unwrap();
        let rise1 = f1.max_temperature() - f1.ambient();
        let rise2 = f2.max_temperature() - f2.ambient();
        prop_assert!(rise1 > 0.0);
        prop_assert!(
            (rise2 - 2.0 * rise1).abs() < 1e-6 * rise2.max(1e-12),
            "rise2 = {} vs 2·rise1 = {}",
            rise2,
            2.0 * rise1
        );
    }

    #[test]
    fn all_temperatures_at_or_above_ambient(
        stack in stack_strategy(),
        cells in prop::collection::vec((0usize..4, 0usize..4, 1.0e-4f64..0.1), 1..10),
    ) {
        let sim = ThermalSimulator::new(stack, 1e-3, 1e-3, 4, 4).unwrap();
        let mut power = PowerMap::new(4, 4, stack.num_layers);
        for &(i, j, w) in &cells {
            power.add(i, j, 0, w);
        }
        let field = sim.solve(&power).unwrap();
        for l in 0..stack.num_layers {
            for j in 0..4 {
                for i in 0..4 {
                    prop_assert!(field.at(i, j, l) >= field.ambient() - 1e-9);
                }
            }
        }
        prop_assert!(field.max_temperature() >= field.average_temperature());
    }

    #[test]
    fn heat_source_is_the_hottest_node(
        stack in stack_strategy(),
        i in 0usize..4,
        j in 0usize..4,
    ) {
        // One point source: its column on its layer must be the maximum.
        let sim = ThermalSimulator::new(stack, 1e-3, 1e-3, 4, 4).unwrap();
        let layer = stack.num_layers - 1;
        let mut power = PowerMap::new(4, 4, stack.num_layers);
        power.add(i, j, layer, 0.1);
        let field = sim.solve(&power).unwrap();
        let at_source = field.at(i, j, layer);
        prop_assert!((at_source - field.max_temperature()).abs() < 1e-9);
    }

    #[test]
    fn multigrid_and_jacobi_pcg_agree_on_random_inputs(
        stack in stack_strategy(),
        nx in 5usize..24,
        ny in 5usize..24,
        cells in prop::collection::vec(
            (0usize..24, 0usize..24, 0usize..6, 1.0e-4f64..0.1),
            1..16,
        ),
    ) {
        // Both preconditioners drive the same CG iteration to the same
        // tolerance, so the fields they return must agree within a safety
        // factor (10×) of that tolerance — on arbitrary stacks, grid
        // shapes (odd sizes exercise the clamped transfer stencils), and
        // power maps.
        let sim = ThermalSimulator::new(stack, 1e-3, 1e-3, nx, ny).unwrap();
        let mut power = PowerMap::new(nx, ny, stack.num_layers);
        for &(i, j, l, w) in &cells {
            power.add(i % nx, j % ny, l % stack.num_layers, w);
        }
        let mut jac_ctx = sim.context_with(Preconditioner::Jacobi);
        let jac = sim.solve_with(&power, &mut jac_ctx).unwrap();
        let mut mg_ctx = sim.context_with(Preconditioner::Multigrid { levels: 0 });
        let mg = sim.solve_with(&power, &mut mg_ctx).unwrap();
        prop_assert_eq!(mg_ctx.preconditioner(), PrecondKind::Multigrid);

        // CG tolerance is 1e-10·‖b‖ on the residual; through the SPD
        // system that bounds the field error well below 1e-5 of the
        // temperature scale. Allow 10× the solver tolerance headroom.
        let scale = (jac.max_temperature() - jac.ambient()).abs().max(1e-9);
        for l in 0..stack.num_layers {
            for j in 0..ny {
                for i in 0..nx {
                    let a = jac.at(i, j, l);
                    let b = mg.at(i, j, l);
                    prop_assert!(
                        (a - b).abs() <= 1e-5 * scale,
                        "({i},{j},{l}): jacobi {} vs multigrid {} (scale {})",
                        a, b, scale
                    );
                }
            }
        }
    }

    #[test]
    fn vertical_profile_brackets_the_layers(stack in stack_strategy(), area_exp in -13.0f64..-10.0) {
        let area = 10.0f64.powf(area_exp);
        let model = ResistanceModel::new(stack, 1e-3, 1e-3).unwrap();
        let profile = model.vertical_profile(area);
        prop_assert!(profile.slope >= 0.0);
        // The fitted line matches the endpoints it was fitted through.
        if stack.num_layers >= 2 {
            let z0 = stack.layer_center_z(0);
            let z1 = stack.layer_center_z(stack.num_layers - 1);
            let r0 = model.cell_resistance(0.5e-3, 0.5e-3, 0, area);
            let r1 = model.cell_resistance(0.5e-3, 0.5e-3, stack.num_layers - 1, area);
            prop_assert!((profile.at(z0) - r0).abs() < 1e-6 * r0);
            prop_assert!((profile.at(z1) - r1).abs() < 1e-6 * r1);
        }
    }
}
