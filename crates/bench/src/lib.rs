//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§7).
//!
//! Each binary accepts:
//!
//! * `--scale <f>` — benchmark size factor relative to the published
//!   IBM-PLACE sizes (default 0.02, so the whole suite runs in minutes;
//!   `--scale 1.0` reproduces paper-size instances),
//! * `--points <n>` — sweep resolution,
//! * `--bench <name>` — restrict suite experiments to one circuit,
//! * `--seed <n>` — RNG seed.

use std::time::Instant;
use tvp_bookshelf::synth::{self, SynthConfig};
use tvp_core::{PlacementMetrics, Placer, PlacerConfig};
use tvp_netlist::Netlist;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Suite scale factor (1.0 = published sizes).
    pub scale: f64,
    /// Number of sweep points.
    pub points: usize,
    /// Restrict to one benchmark by name.
    pub bench: Option<String>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Args {
    /// Parses `std::env::args`, with the given default sweep resolution.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(default_points: usize) -> Self {
        let mut args = Args {
            scale: 0.02,
            points: default_points,
            bench: None,
            seed: 1,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| panic!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--scale" => args.scale = value().parse().expect("--scale expects a number"),
                "--points" => args.points = value().parse().expect("--points expects an integer"),
                "--bench" => args.bench = Some(value()),
                "--seed" => args.seed = value().parse().expect("--seed expects an integer"),
                "--help" | "-h" => {
                    eprintln!("flags: --scale <f> --points <n> --bench <name> --seed <n>");
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        args
    }

    /// The benchmark suite at the requested scale, optionally filtered.
    pub fn suite(&self) -> Vec<SynthConfig> {
        synth::ibm_suite(self.scale)
            .into_iter()
            .filter(|c| self.bench.as_ref().is_none_or(|b| &c.name == b))
            .map(|c| c.with_seed(self.seed ^ 0x5EED))
            .collect()
    }

    /// The scaled `ibm01` benchmark (Figs 5–8 all use ibm01).
    pub fn ibm01(&self) -> SynthConfig {
        synth::ibm_suite(self.scale)
            .into_iter()
            .next()
            .expect("suite is non-empty")
            .with_seed(self.seed ^ 0x5EED)
    }
}

/// Generates the netlist for a synthetic benchmark config.
pub fn netlist_of(config: &SynthConfig) -> Netlist {
    synth::generate(config).expect("benchmark generation cannot fail for suite configs")
}

/// One experiment run: metrics plus wall-clock seconds.
#[derive(Clone, Copy, Debug)]
pub struct Run {
    /// Placement quality metrics.
    pub metrics: PlacementMetrics,
    /// Wall-clock placement time, seconds.
    pub seconds: f64,
}

/// Places `netlist` under `config` and returns metrics and runtime.
///
/// # Panics
///
/// Panics if placement fails (suite configs are always valid).
pub fn run(netlist: &Netlist, config: PlacerConfig) -> Run {
    let start = Instant::now();
    let result = Placer::new(config)
        .place(netlist)
        .expect("placement succeeds");
    Run {
        metrics: result.metrics,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The paper's Fig. 3 sweep: `α_ILV` from 5×10⁻⁹ to 5.2×10⁻³,
/// geometrically spaced.
pub fn alpha_ilv_sweep(points: usize) -> Vec<f64> {
    geometric(5.0e-9, 5.2e-3, points)
}

/// The paper's Figs. 6–9 thermal sweep: `α_TEMP` from 10⁻⁸ to 1.3×10⁻³.
pub fn alpha_temp_sweep(points: usize) -> Vec<f64> {
    geometric(1.0e-8, 1.3e-3, points)
}

/// `points` geometrically spaced values covering `[lo, hi]`.
pub fn geometric(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && lo > 0.0 && hi > lo);
    let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
    (0..points).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Percent change from `base` to `value`.
pub fn pct(value: f64, base: f64) -> f64 {
    (value - base) / base * 100.0
}

/// Least-squares power-law fit `y = a·x^b`; returns `(a, b)`.
///
/// # Panics
///
/// Panics if fewer than two points are provided or any value is
/// non-positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
        let lx = x.ln();
        let ly = y.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

/// Prints a row of right-aligned columns, 14 characters each.
pub fn print_row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float in compact scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_covers_range() {
        let v = geometric(1.0, 1000.0, 4);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[3] - 1000.0).abs() < 1e-9);
        assert!((v[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (i * 1000) as f64;
                (x, 0.5 * x.powf(1.19))
            })
            .collect();
        let (a, b) = fit_power_law(&pts);
        assert!((b - 1.19).abs() < 1e-9, "exponent {b}");
        assert!((a - 0.5).abs() < 1e-9, "prefactor {a}");
    }

    #[test]
    fn pct_changes() {
        assert!((pct(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((pct(81.0, 100.0) + 19.0).abs() < 1e-12);
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        let ilv = alpha_ilv_sweep(11);
        assert!((ilv[0] - 5.0e-9).abs() < 1e-15);
        assert!((ilv[10] - 5.2e-3).abs() < 1e-9);
        let temp = alpha_temp_sweep(5);
        assert!((temp[0] - 1.0e-8).abs() < 1e-15);
    }

    #[test]
    fn tiny_experiment_runs() {
        let config = SynthConfig::named("t", 64, 3.2e-10);
        let netlist = netlist_of(&config);
        let r = run(&netlist, PlacerConfig::new(2));
        assert!(r.metrics.wirelength > 0.0);
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn suite_filtering_and_scaling() {
        let args = Args {
            scale: 0.01,
            points: 3,
            bench: Some("ibm05".into()),
            seed: 2,
        };
        let suite = args.suite();
        assert_eq!(suite.len(), 1);
        assert_eq!(suite[0].name, "ibm05");
        assert_eq!(suite[0].num_cells, (29347.0f64 * 0.01).round() as usize);
        assert_eq!(args.ibm01().name, "ibm01");
    }
}
