//! Table 1: benchmark circuits (name, cells, area).
//!
//! Prints the published statistics alongside what the synthetic generator
//! actually produces at the requested `--scale`.

use tvp_bench::{netlist_of, print_row, Args};
use tvp_bookshelf::synth::IBM_TABLE1;

fn main() {
    let args = Args::parse(0);
    println!("Table 1: Benchmark Circuits (scale = {})", args.scale);
    print_row(&[
        "name".into(),
        "paper cells".into(),
        "paper mm^2".into(),
        "gen cells".into(),
        "gen mm^2".into(),
        "gen nets".into(),
        "avg degree".into(),
    ]);
    for config in args.suite() {
        let published = IBM_TABLE1
            .iter()
            .find(|&&(name, _, _)| name == config.name)
            .expect("suite names come from Table 1");
        let netlist = netlist_of(&config);
        let stats = netlist.stats();
        print_row(&[
            config.name.clone(),
            published.1.to_string(),
            format!("{:.3}", published.2),
            stats.num_cells.to_string(),
            format!("{:.4}", stats.total_cell_area * 1.0e6),
            stats.num_nets.to_string(),
            format!("{:.2}", stats.avg_net_degree),
        ]);
    }
}
