//! The §7 effort experiments: quality vs runtime as (a) hMetis random
//! starts and target-region sizes grow (paper: 3.8% better objective at
//! 3.4× runtime) and (b) the coarse+detailed legalization rounds are
//! repeated (paper: 7.7% better at 65× runtime).

use tvp_bench::{netlist_of, pct, print_row, run, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(0);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Effort experiments on ibm01 ({} cells, scale = {})",
        netlist.num_cells(),
        args.scale
    );

    let base = run(&netlist, PlacerConfig::new(4));
    println!();
    println!("partitioner restarts + larger move target regions:");
    print_row(&[
        "starts".into(),
        "region".into(),
        "objective".into(),
        "dObj %".into(),
        "runtime x".into(),
    ]);
    for (starts, region) in [(1usize, 5usize), (4, 7), (16, 9)] {
        let mut config = PlacerConfig::new(4).with_partition_starts(starts);
        config.coarse_target_region_bins = region;
        let r = run(&netlist, config);
        print_row(&[
            starts.to_string(),
            region.to_string(),
            format!("{:.4e}", r.metrics.objective),
            format!("{:+.2}", pct(r.metrics.objective, base.metrics.objective)),
            format!("{:.2}", r.seconds / base.seconds),
        ]);
    }

    println!();
    println!("repeated coarse + detailed legalization rounds:");
    print_row(&[
        "rounds".into(),
        "objective".into(),
        "dObj %".into(),
        "runtime x".into(),
    ]);
    for rounds in [0usize, 2, 10] {
        let mut config = PlacerConfig::new(4);
        config.post_opt_rounds = rounds;
        let r = run(&netlist, config);
        print_row(&[
            (rounds + 1).to_string(),
            format!("{:.4e}", r.metrics.objective),
            format!("{:+.2}", pct(r.metrics.objective, base.metrics.objective)),
            format!("{:.2}", r.seconds / base.seconds),
        ]);
    }
    println!();
    println!("(paper: 3.8% better at 3.4x runtime; 7.7% better at 65x runtime)");
}
