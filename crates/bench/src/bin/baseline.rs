//! Baseline comparison backing the paper's §1 argument: recursive-
//! bisection global placement vs a quadratic (force-directed) baseline,
//! both feeding the identical legalization stages, on circuits *without*
//! IO pads — the regime where the paper says partitioning wins.

use std::time::Instant;
use tvp_bench::{netlist_of, pct, print_row, Args};
use tvp_core::coarse::coarse_legalize;
use tvp_core::detail::{check_legal, detail_legalize, refine_legal};
use tvp_core::global::{force_directed_place, global_place};
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, PlacerConfig};
use tvp_netlist::Netlist;

struct Outcome {
    wirelength: f64,
    ilv: f64,
    seconds: f64,
}

fn run_flow(netlist: &Netlist, config: &PlacerConfig, force_directed: bool) -> Outcome {
    let start = Instant::now();
    let chip = Chip::from_netlist(netlist, config).expect("valid config");
    let model = ObjectiveModel::new(netlist, &chip, config).expect("valid model");
    let placement = if force_directed {
        force_directed_place(netlist, &chip, &model, config)
    } else {
        global_place(netlist, &chip, &model, config)
    };
    let mut objective = IncrementalObjective::new(netlist, &model, placement);
    coarse_legalize(&mut objective, netlist, &chip, config);
    detail_legalize(&mut objective, netlist, &chip, config.detail_row_window);
    refine_legal(&mut objective, netlist, &chip, config.legal_refine_passes);
    assert_eq!(check_legal(netlist, &chip, objective.placement()), None);
    Outcome {
        wirelength: objective.total_wirelength(),
        ilv: objective.total_ilv(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let args = Args::parse(0);
    let suite = args.suite();
    println!(
        "Global-placement baseline comparison over {} benchmarks (scale = {})",
        suite.len(),
        args.scale
    );
    print_row(&[
        "benchmark".into(),
        "cells".into(),
        "bisect WL".into(),
        "force WL".into(),
        "dWL %".into(),
        "bisect ILV".into(),
        "force ILV".into(),
        "time x".into(),
    ]);
    let mut wl_gain = 0.0;
    for config_s in &suite {
        let netlist = netlist_of(config_s);
        let config = PlacerConfig::new(4);
        let bisect = run_flow(&netlist, &config, false);
        let force = run_flow(&netlist, &config, true);
        let d = pct(force.wirelength, bisect.wirelength);
        wl_gain += d;
        print_row(&[
            config_s.name.clone(),
            netlist.num_cells().to_string(),
            format!("{:.4e}", bisect.wirelength),
            format!("{:.4e}", force.wirelength),
            format!("{d:+.1}"),
            format!("{:.0}", bisect.ilv),
            format!("{:.0}", force.ilv),
            format!("{:.2}", force.seconds / bisect.seconds),
        ]);
    }
    println!();
    println!(
        "force-directed baseline averages {:+.1}% wirelength vs recursive bisection \
         (paper §1: partitioning suits pad-less 3D ICs better)",
        wl_gain / suite.len() as f64
    );
}
