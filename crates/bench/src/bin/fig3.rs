//! Figure 3: wirelength vs interlayer-via-density tradeoff curves, one per
//! benchmark, as `α_ILV` sweeps the paper's range (α_TEMP = 0, 4 layers).
//!
//! The paper's y axis is "interlayer via density per interlayer" (vias per
//! m² of footprint per layer boundary); the x axis is total wirelength in
//! meters.

use tvp_bench::{alpha_ilv_sweep, netlist_of, print_row, run, sci, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(7);
    let sweep = alpha_ilv_sweep(args.points);
    println!(
        "Figure 3: tradeoff curves (scale = {}, {} alpha points)",
        args.scale, args.points
    );
    for config in args.suite() {
        let netlist = netlist_of(&config);
        println!();
        println!("{} ({} cells):", config.name, netlist.num_cells());
        print_row(&[
            "alpha_ILV".into(),
            "WL (m)".into(),
            "ILV count".into(),
            "ILV/m^2/bnd".into(),
        ]);
        for &alpha in &sweep {
            let r = run(&netlist, PlacerConfig::new(4).with_alpha_ilv(alpha));
            print_row(&[
                sci(alpha),
                sci(r.metrics.wirelength),
                format!("{:.0}", r.metrics.ilv_count),
                sci(r.metrics.ilv_density_per_interlayer),
            ]);
        }
    }
    println!();
    println!("(curves move toward fewer vias and longer wires as alpha_ILV grows)");
}
