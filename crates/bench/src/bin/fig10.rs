//! Figure 10: runtime vs number of cells, with and without the thermal
//! objective, plus the paper's power-law fit (they report `t ∝ n^1.19`,
//! i.e. near-linear scaling).

use tvp_bench::{fit_power_law, netlist_of, print_row, run, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(0);
    let suite = args.suite();
    println!(
        "Figure 10: runtime vs cells over {} benchmarks (scale = {})",
        suite.len(),
        args.scale
    );
    print_row(&[
        "benchmark".into(),
        "cells".into(),
        "regular (s)".into(),
        "thermal (s)".into(),
    ]);
    let mut regular_points = Vec::new();
    let mut thermal_points = Vec::new();
    for config in &suite {
        let netlist = netlist_of(config);
        let regular = run(&netlist, PlacerConfig::new(4));
        let thermal = run(&netlist, PlacerConfig::new(4).with_alpha_temp(1.0e-5));
        print_row(&[
            config.name.clone(),
            netlist.num_cells().to_string(),
            format!("{:.3}", regular.seconds),
            format!("{:.3}", thermal.seconds),
        ]);
        regular_points.push((netlist.num_cells() as f64, regular.seconds.max(1e-6)));
        thermal_points.push((netlist.num_cells() as f64, thermal.seconds.max(1e-6)));
    }
    if regular_points.len() >= 2 {
        let (a_r, b_r) = fit_power_law(&regular_points);
        let (a_t, b_t) = fit_power_law(&thermal_points);
        println!();
        println!("power-law fits t = a * n^b:");
        println!("  regular placement: a = {a_r:.3e}, b = {b_r:.3}");
        println!("  thermal placement: a = {a_t:.3e}, b = {b_t:.3}");
        println!("  (paper fit: b = 1.19 — near-linear)");
    }
}
