//! Hot-path timing harness: measures the three parallelized engines
//! (thermal CG solve, objective rebuild, recursive bisection) across a
//! thread sweep, the warm-start savings, and the incremental delta
//! engine's move/swap pricing and commit kernels, and writes the results
//! as machine-readable JSON (`BENCH_hotpaths.json` by default). The
//! `thermal_oracle` section fits the compact superposition tier against
//! the multigrid ground truth, gates the fit error (nonzero exit above
//! the gate — the CI smoke job relies on this), and compares the
//! compact per-move price against the coarse-grid warm solve. A
//! `scaling` sweep rounds out the report: per cell count (one fresh
//! process each) it times synth, Bookshelf render, zero-copy parse,
//! streaming netlist assembly, and — where practical — the full
//! placement pipeline, alongside that size's peak RSS.
//!
//! The report includes the hardware thread count so the numbers can be
//! read honestly: on a single-core host, extra workers can only add
//! scheduling overhead, and the interesting columns are the warm-start
//! iteration savings and the threads=1 ≡ threads=N result equality.
//! The delta-pricing rows carry their own denominator: a live
//! `delta_move_rescan` loop over the same probe pattern reproduces the
//! pre-delta-engine full-bbox-rescan kernel, so the reported speedups
//! hold on whatever machine ran the harness.
//!
//! Flags: `--out FILE`, `--cells N[,N,...]` (first count feeds the kernel
//! sections, the full list drives the `scaling` sweep), `--repeats N`,
//! `--grid N`, `--smoke` (threads=\[1\], minimal repeats/probes — the CI
//! smoke mode).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_bookshelf::{stream, write_nets, write_nodes, write_wts, Design, DesignBuilderOptions};
use tvp_core::netweight::NetWeights;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{
    Chip, PassEvent, PlaceOptions, Placement, Placer, PlacerConfig, PlacerEvent, PlacerObserver,
};
use tvp_netlist::{CellId, Netlist, NetlistBuilder, PinDirection};
use tvp_partition::{bisect, bisect_fixed_profiled, BisectConfig, FixedSide, Hypergraph};
use tvp_thermal::{
    compact_params, CompactModel, LayerStack, PowerMap, Preconditioner, ThermalSimulator,
};

/// Pipeline stages a scaling row may time, in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    Global,
    Coarse,
    Detail,
}

impl Stage {
    const ALL: [Stage; 3] = [Stage::Global, Stage::Coarse, Stage::Detail];

    fn name(self) -> &'static str {
        match self {
            Stage::Global => "global",
            Stage::Coarse => "coarse",
            Stage::Detail => "detail",
        }
    }
}

/// Parses `--stages global[,coarse[,detail]]`. Later stages consume
/// earlier ones' output, so only prefixes of the pipeline are
/// expressible.
fn parse_stages(spec: &str) -> Vec<Stage> {
    let stages: Vec<Stage> = spec
        .split(',')
        .map(|s| match s.trim() {
            "global" => Stage::Global,
            "coarse" => Stage::Coarse,
            "detail" => Stage::Detail,
            other => panic!("--stages: unknown stage `{other}` (global, coarse, detail)"),
        })
        .collect();
    assert!(
        !stages.is_empty() && stages[..] == Stage::ALL[..stages.len()],
        "--stages expects a prefix of global,coarse,detail (got `{spec}`)"
    );
    stages
}

struct Options {
    out: String,
    cells: Vec<usize>,
    repeats: usize,
    grid: usize,
    smoke: bool,
    scale_one: Option<usize>,
    /// Partial-run stage prefix for the scaling sweep; `None` keeps the
    /// default policy (full pipeline up to `SCALE_PLACE_MAX` cells, no
    /// placement above).
    stages: Option<Vec<Stage>>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_hotpaths.json".to_string(),
        cells: vec![1_000],
        repeats: 5,
        grid: 32,
        smoke: false,
        scale_one: None,
        stages: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} expects a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = value(),
            "--cells" => {
                opts.cells = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .expect("--cells expects comma-separated integers")
                    })
                    .collect();
                assert!(!opts.cells.is_empty(), "--cells expects at least one count");
            }
            "--repeats" => opts.repeats = value().parse().expect("--repeats expects an integer"),
            "--grid" => opts.grid = value().parse().expect("--grid expects an integer"),
            "--smoke" => opts.smoke = true,
            "--stages" => opts.stages = Some(parse_stages(&value())),
            // Internal: run one scaling row in this (fresh) process and
            // print its JSON object to stdout. The parent spawns this per
            // cell count so peak-RSS readings don't contaminate each other.
            "--scale-one" => {
                opts.scale_one = Some(value().parse().expect("--scale-one expects an integer"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out FILE --cells N[,N,...] --repeats N --grid N --smoke \
                     --stages global[,coarse[,detail]]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    if opts.smoke {
        opts.repeats = opts.repeats.min(2);
    }
    opts
}

/// Best-of-`repeats` wall time in milliseconds (min is the standard
/// estimator for noise floors on a shared machine).
fn time_ms<R>(repeats: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn dense_power(nx: usize, layers: usize, scale: f64) -> PowerMap {
    let mut power = PowerMap::new(nx, nx, layers);
    for k in 0..layers {
        for j in 0..nx {
            for i in 0..nx {
                power.add(i, j, k, scale * 1.0e-4 * (1 + (i + j + k) % 5) as f64);
            }
        }
    }
    power
}

/// Best-of-`repeats` nanoseconds per operation for a kernel that runs
/// `n` operations per invocation.
fn time_ns_per_op(repeats: usize, n: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// Uniformly scattered placement for the pricing kernels: the worst case
/// for bbox maintenance (every net spans a large box, extremes retreat
/// often), seeded for reproducibility.
fn scattered_placement(netlist: &Netlist, chip: &Chip, rng: &mut SmallRng) -> Placement {
    let mut placement = Placement::centered(netlist.num_cells(), chip);
    for i in 0..netlist.num_cells() {
        placement.set(
            CellId::new(i),
            rng.random_range(0.0..chip.width),
            rng.random_range(0.0..chip.depth),
            rng.random_range(0..chip.num_layers as u16),
        );
    }
    placement
}

/// One driver fanning out to every other cell, plus a chain of 2-pin
/// nets: the high-fanout stress case for per-net extreme maintenance.
fn high_fanout_netlist(cells: usize) -> Netlist {
    let mut b = NetlistBuilder::new();
    let ids: Vec<CellId> = (0..cells)
        .map(|i| b.add_cell(format!("c{i}"), 1.0e-6, 1.0e-6))
        .collect();
    let big = b.add_net("big");
    b.connect(big, ids[0], PinDirection::Output)
        .expect("driver connects");
    for &c in &ids[1..] {
        b.connect(big, c, PinDirection::Input)
            .expect("sink connects");
    }
    for w in ids.windows(2) {
        let n = b.add_net(format!("ch{}", w[0].index()));
        b.connect(n, w[0], PinDirection::Output).expect("connects");
        b.connect(n, w[1], PinDirection::Input).expect("connects");
    }
    b.build().expect("high-fanout netlist builds")
}

struct PricingRow {
    name: &'static str,
    ns_per_op: f64,
    rescan_ns_per_op: Option<f64>,
}

/// Largest cell count at which the scaling sweep runs the full placement
/// pipeline; above this only ingest (synth/write/parse/build) is timed.
const SCALE_PLACE_MAX: usize = 100_000;

/// Peak resident set size of this process in MB (Linux `VmHWM`), 0.0
/// where `/proc` is unavailable.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// One scaling-sweep row: synthesize `cells`, render Bookshelf text,
/// scan it with the zero-copy readers (pure parse cost), assemble the
/// netlist through the streaming path, and — at sizes where it is
/// practical — run the full placement pipeline. Returns the row as a
/// JSON object string.
///
/// With `stages` set, the row instead runs exactly that prefix of the
/// pipeline (`global`, then `coarse`, then `detail`) through the
/// stage entry points, timing each — this is how the million-cell row
/// times the global stage without paying for the rest. A full
/// three-stage prefix still goes through [`Placer`] so its timings
/// match the production path.
///
/// Meant to run in a fresh process (`--scale-one`) so the reported peak
/// RSS belongs to this size alone.
fn scale_row_json(cells: usize, stages: Option<&[Stage]>) -> String {
    let t = Instant::now();
    let netlist =
        generate(&SynthConfig::named("scale", cells, cells as f64 * 5.0e-12)).expect("synth");
    let synth_ms = t.elapsed().as_secs_f64() * 1e3;
    let (num_nets, num_pins) = (netlist.num_nets(), netlist.num_pins());

    let builder_opts = DesignBuilderOptions::default();
    let t = Instant::now();
    let design = Design::from_netlist("scale", netlist);
    let (nodes, nets, wts, _) = design.to_files(builder_opts);
    drop(design);
    let nodes_text = write_nodes(&nodes);
    let nets_text = write_nets(&nets);
    let wts_text = write_wts(&wts);
    drop((nodes, nets, wts));
    let write_ms = t.elapsed().as_secs_f64() * 1e3;

    // Pure token scan: every record visited, nothing materialized.
    let t = Instant::now();
    let mut nr = stream::NodesReader::new(&nodes_text).expect("nodes header");
    while nr.next_node().expect("node record").is_some() {}
    let mut er = stream::NetsReader::new(&nets_text).expect("nets header");
    while let Some(net) = er.next_net().expect("net record") {
        for _ in 0..net.degree {
            std::hint::black_box(er.next_pin().expect("pin record"));
        }
    }
    let mut wr = stream::WtsReader::new(&wts_text);
    while wr.next_record().expect("wts record").is_some() {}
    let parse_ms = t.elapsed().as_secs_f64() * 1e3;

    // Fused streaming parse + netlist assembly (what `load` runs).
    let t = Instant::now();
    let assembled = Design::assemble_streaming(
        "scale",
        &nodes_text,
        &nets_text,
        Some(&wts_text),
        None,
        None,
        builder_opts,
    )
    .expect("assemble");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    drop((nodes_text, nets_text, wts_text));

    let threads = tvp_parallel::available_threads().max(1);
    let place = match stages {
        // A partial prefix runs the stage entry points directly; the
        // full three-stage prefix and the default policy go through the
        // production `Placer`.
        Some(stages) if stages.len() < Stage::ALL.len() => {
            let netlist = &assembled.netlist;
            let config = PlacerConfig::new(4)
                .with_partition_starts(4)
                .with_threads(threads);
            let chip = Chip::from_netlist(netlist, &config).expect("chip");
            let model = ObjectiveModel::new(netlist, &chip, &config).expect("model");
            let t = Instant::now();
            let placement = tvp_core::global::global_place(netlist, &chip, &model, &config);
            let global_ms = t.elapsed().as_secs_f64() * 1e3;
            let mut row = format!(
                "{{\"threads\": {threads}, \"stages\": \"{}\", \"global_ms\": {global_ms:.1}",
                stages
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            if stages.contains(&Stage::Coarse) {
                let mut objective = IncrementalObjective::new(netlist, &model, placement);
                let mut shift_passes = 0usize;
                let t = Instant::now();
                tvp_core::coarse::coarse_legalize_observed(
                    &mut objective,
                    netlist,
                    &chip,
                    &config,
                    &mut |p| {
                        if matches!(p, PassEvent::ShiftPass { .. }) {
                            shift_passes += 1;
                        }
                        std::ops::ControlFlow::Continue(())
                    },
                );
                let _ = write!(
                    row,
                    ", \"coarse_ms\": {:.1}, \"shift_passes\": {shift_passes}",
                    t.elapsed().as_secs_f64() * 1e3
                );
            }
            row.push('}');
            row
        }
        // An explicit full prefix overrides the size cutoff; the default
        // policy places only up to `SCALE_PLACE_MAX`.
        Some(_) => placer_row(&assembled.netlist, threads),
        None if cells <= SCALE_PLACE_MAX => placer_row(&assembled.netlist, threads),
        None => "null".to_string(),
    };

    fn placer_row(netlist: &Netlist, threads: usize) -> String {
        /// Counts cell-shifting passes from the event stream (the
        /// convergence-adaptive spread makes the count a scaling signal).
        #[derive(Default)]
        struct ShiftPassCounter(usize);
        impl PlacerObserver for ShiftPassCounter {
            fn event(&mut self, event: &PlacerEvent) {
                if matches!(
                    event,
                    PlacerEvent::Pass {
                        pass: PassEvent::ShiftPass { .. },
                        ..
                    }
                ) {
                    self.0 += 1;
                }
            }
        }
        {
            let placer = Placer::new(
                PlacerConfig::new(4)
                    .with_partition_starts(4)
                    .with_threads(threads),
            );
            let mut counter = ShiftPassCounter::default();
            let t = Instant::now();
            let result = placer
                .place_with_options(
                    netlist,
                    &[],
                    PlaceOptions {
                        observer: Some(&mut counter),
                        ..PlaceOptions::default()
                    },
                )
                .expect("places");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            format!(
                "{{\"threads\": {threads}, \"wall_ms\": {wall_ms:.1}, \"global_ms\": {:.1}, \"coarse_ms\": {:.1}, \"detail_ms\": {:.1}, \"shift_passes\": {}}}",
                result.timings.global.as_secs_f64() * 1e3,
                result.timings.coarse.as_secs_f64() * 1e3,
                result.timings.detail.as_secs_f64() * 1e3,
                counter.0,
            )
        }
    }

    format!(
        "{{\"cells\": {cells}, \"nets\": {num_nets}, \"pins\": {num_pins}, \"synth_ms\": {synth_ms:.1}, \"write_ms\": {write_ms:.1}, \"parse_ms\": {parse_ms:.1}, \"build_ms\": {build_ms:.1}, \"place\": {place}, \"peak_rss_mb\": {:.1}}}",
        peak_rss_mb()
    )
}

fn json_threads_ms(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (threads, ms)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{threads}\": {ms:.3}");
    }
    s.push('}');
    s
}

fn main() {
    let opts = parse_options();
    if let Some(cells) = opts.scale_one {
        println!("{}", scale_row_json(cells, opts.stages.as_deref()));
        return;
    }
    let kernel_cells = opts.cells[0];
    let thread_counts: &[usize] = if opts.smoke { &[1] } else { &[1, 2, 4] };
    // The physical core count, straight from the OS: the honest
    // denominator for every multi-thread row in the report.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("hotpaths: {hw} hardware thread(s), sweeping {thread_counts:?}");

    // --- Thermal solve: cold vs warm, per thread count -------------------
    let layers = 4usize;
    let sim = ThermalSimulator::new(
        LayerStack::mitll_0_18um(layers),
        1e-3,
        1e-3,
        opts.grid,
        opts.grid,
    )
    .expect("valid geometry");
    let base = dense_power(opts.grid, layers, 1.0);
    let drifted = dense_power(opts.grid, layers, 1.02);

    let mut thermal_cold = Vec::new();
    for &threads in thread_counts {
        let ms = tvp_parallel::with_threads(threads, || {
            time_ms(opts.repeats, || sim.solve(&base).expect("converges"))
        });
        thermal_cold.push((threads, ms));
    }
    let mut ctx = sim.context();
    sim.solve_with(&base, &mut ctx).expect("converges");
    let cold_iterations = ctx.last_stats().expect("solved").iterations;
    let warm_ms = time_ms(opts.repeats, || {
        sim.solve_with(&drifted, &mut ctx).expect("converges")
    });
    let warm_iterations = ctx.last_stats().expect("solved").iterations;

    // --- Thermal grid scaling: multigrid vs Jacobi preconditioning -------
    // Cold solves at growing grid sizes. The multigrid column is the
    // headline: its iteration count should stay nearly flat as the grid
    // grows while Jacobi's climbs with the mesh diameter.
    struct ScalingRow {
        nx: usize,
        layers: usize,
        mg_iterations: usize,
        mg_cold_ms: f64,
        mg_setup_ms: f64,
        mg_levels: usize,
        jacobi_iterations: usize,
        jacobi_cold_ms: f64,
    }
    let scaling_grids: &[(usize, usize)] = if opts.smoke {
        &[(32, 4), (64, 8)]
    } else {
        &[(32, 4), (64, 8), (96, 8), (128, 8), (192, 8)]
    };
    let mut scaling = Vec::new();
    for &(nx, nl) in scaling_grids {
        let sim = ThermalSimulator::new(LayerStack::mitll_0_18um(nl), 1e-3, 1e-3, nx, nx)
            .expect("valid geometry");
        let power = dense_power(nx, nl, 1.0);
        let mut mg_ctx = sim.context_with(Preconditioner::default());
        let mg_cold_ms = time_ms(opts.repeats.min(3), || {
            mg_ctx.reset();
            sim.solve_with(&power, &mut mg_ctx).expect("converges")
        });
        let mg_iterations = mg_ctx.last_stats().expect("solved").iterations;
        let mut jac_ctx = sim.context_with(Preconditioner::Jacobi);
        let jacobi_cold_ms = time_ms(opts.repeats.min(3), || {
            jac_ctx.reset();
            sim.solve_with(&power, &mut jac_ctx).expect("converges")
        });
        scaling.push(ScalingRow {
            nx,
            layers: nl,
            mg_iterations,
            mg_cold_ms,
            mg_setup_ms: mg_ctx.setup_seconds() * 1e3,
            mg_levels: mg_ctx.multigrid_levels().unwrap_or(0),
            jacobi_iterations: jac_ctx.last_stats().expect("solved").iterations,
            jacobi_cold_ms,
        });
    }

    // --- Objective rebuild + netweight, per thread count -----------------
    let netlist = generate(&SynthConfig::named(
        "hot",
        kernel_cells,
        kernel_cells as f64 * 5.0e-12,
    ))
    .expect("synth");
    let config = PlacerConfig::new(layers).with_alpha_temp(1.0e-4);
    let chip = Chip::from_netlist(&netlist, &config).expect("chip");
    let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model");
    let placement = Placement::centered(netlist.num_cells(), &chip);
    let mut objective = IncrementalObjective::new(&netlist, &model, placement.clone());

    let mut rebuild = Vec::new();
    let mut netweight = Vec::new();
    for &threads in thread_counts {
        tvp_parallel::with_threads(threads, || {
            rebuild.push((threads, time_ms(opts.repeats, || objective.rebuild())));
            netweight.push((
                threads,
                time_ms(opts.repeats, || {
                    NetWeights::thermal(&netlist, &model, &placement)
                }),
            ));
        });
    }

    // --- Delta engine: move/swap pricing and commit kernels --------------
    // WL + ILV model (the default pipeline configuration, where pricing
    // takes the allocation-free probe fast path), scattered placement so
    // every probe crosses real geometry. The rescan rows time the same
    // probe pattern through `delta_move_rescan` — the pre-delta-engine
    // full-bbox-rescan kernel — giving a live speedup denominator.
    let pricing_config = PlacerConfig::new(layers);
    let pricing_model =
        ObjectiveModel::new(&netlist, &chip, &pricing_config).expect("pricing model");
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let scattered = scattered_placement(&netlist, &chip, &mut rng);
    let pricing_obj = IncrementalObjective::new(&netlist, &pricing_model, scattered.clone());

    let num_probes = if opts.smoke { 10_000 } else { 100_000 };
    let probes: Vec<(CellId, f64, f64, u16)> = (0..num_probes)
        .map(|_| {
            (
                CellId::new(rng.random_range(0..netlist.num_cells())),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            )
        })
        .collect();
    let pairs: Vec<(CellId, CellId)> = (0..num_probes / 5)
        .map(|_| {
            let a = rng.random_range(0..netlist.num_cells());
            let mut b = rng.random_range(0..netlist.num_cells());
            if b == a {
                b = (b + 1) % netlist.num_cells();
            }
            (CellId::new(a), CellId::new(b))
        })
        .collect();

    let move_ns = time_ns_per_op(opts.repeats, probes.len(), || {
        probes
            .iter()
            .map(|&(c, x, y, l)| pricing_obj.delta_move(c, x, y, l))
            .sum()
    });
    let move_rescan_ns = time_ns_per_op(opts.repeats, probes.len(), || {
        probes
            .iter()
            .map(|&(c, x, y, l)| pricing_obj.delta_move_rescan(c, x, y, l))
            .sum()
    });
    let swap_ns = time_ns_per_op(opts.repeats, pairs.len(), || {
        pairs
            .iter()
            .map(|&(a, b)| pricing_obj.delta_swap(a, b))
            .sum()
    });
    // The mutate-and-revert swap this engine replaces did four commits
    // (two to stage the swap, two to undo it), each costing at least one
    // full-rescan probe; four rescan probes per pair is therefore a
    // conservative lower bound on the replaced kernel.
    let swap_rescan_ns = time_ns_per_op(opts.repeats, pairs.len(), || {
        pairs
            .iter()
            .map(|&(a, b)| {
                let (bx, by, bl) = pricing_obj.placement().position(b);
                let (ax, ay, al) = pricing_obj.placement().position(a);
                pricing_obj.delta_move_rescan(a, bx, by, bl)
                    + pricing_obj.delta_move_rescan(b, ax, ay, al)
                    + pricing_obj.delta_move_rescan(a, ax, ay, al)
                    + pricing_obj.delta_move_rescan(b, bx, by, bl)
            })
            .sum()
    });
    let mut commit_ns = f64::INFINITY;
    for _ in 0..opts.repeats.max(1) {
        let mut o = IncrementalObjective::new(&netlist, &pricing_model, scattered.clone());
        let t = Instant::now();
        let mut acc = 0.0;
        for &(c, x, y, l) in &probes {
            acc += o.apply_move(c, x, y, l);
        }
        std::hint::black_box(acc);
        commit_ns = commit_ns.min(t.elapsed().as_nanos() as f64 / probes.len() as f64);
    }

    let hf_cells = 256usize;
    let hf = high_fanout_netlist(hf_cells);
    let hf_chip = Chip::from_netlist(&hf, &pricing_config).expect("hf chip");
    let hf_model = ObjectiveModel::new(&hf, &hf_chip, &pricing_config).expect("hf model");
    let hf_scattered = scattered_placement(&hf, &hf_chip, &mut rng);
    let hf_obj = IncrementalObjective::new(&hf, &hf_model, hf_scattered);
    let hf_probes: Vec<(CellId, f64, f64, u16)> = (0..num_probes / 5)
        .map(|_| {
            (
                CellId::new(1 + rng.random_range(0..hf.num_cells() - 1)),
                rng.random_range(0.0..hf_chip.width),
                rng.random_range(0.0..hf_chip.depth),
                rng.random_range(0..hf_chip.num_layers as u16),
            )
        })
        .collect();
    let hf_ns = time_ns_per_op(opts.repeats, hf_probes.len(), || {
        hf_probes
            .iter()
            .map(|&(c, x, y, l)| hf_obj.delta_move(c, x, y, l))
            .sum()
    });
    let hf_rescan_ns = time_ns_per_op(opts.repeats, hf_probes.len(), || {
        hf_probes
            .iter()
            .map(|&(c, x, y, l)| hf_obj.delta_move_rescan(c, x, y, l))
            .sum()
    });

    let pricing_rows = [
        PricingRow {
            name: "move_pricing",
            ns_per_op: move_ns,
            rescan_ns_per_op: Some(move_rescan_ns),
        },
        PricingRow {
            name: "swap_pricing",
            ns_per_op: swap_ns,
            rescan_ns_per_op: Some(swap_rescan_ns),
        },
        PricingRow {
            name: "commit",
            ns_per_op: commit_ns,
            rescan_ns_per_op: None,
        },
        PricingRow {
            name: "high_fanout_move_pricing",
            ns_per_op: hf_ns,
            rescan_ns_per_op: Some(hf_rescan_ns),
        },
    ];

    // --- Tiered thermal oracle: compact fit gate + pricing throughput ----
    // Fit the compact superposition model in-tree against the multigrid
    // ground truth (exactly what `CompactModel::fit` does inside the
    // placer), gate the fit error, and time the compact per-move price —
    // two frozen-field probes — against the coarse-grid warm multigrid
    // solve it replaces in the legalization inner loop.
    let (oracle_nx, oracle_ny) = compact_params::CANONICAL_GRID;
    let oracle_sim = ThermalSimulator::new(
        LayerStack::mitll_0_18um(layers),
        1e-3,
        1e-3,
        oracle_nx,
        oracle_ny,
    )
    .expect("valid geometry");
    let (compact, fit) =
        CompactModel::fit(&oracle_sim, Preconditioner::default()).expect("compact fit");
    let fit_within_gate = fit.max_rel_error <= compact_params::CROSS_MODEL_GATE;

    let frozen = compact
        .evaluate(&dense_power(oracle_nx, layers, 1.0))
        .expect("compact evaluate");
    let oracle_probes: Vec<(f64, f64, usize, f64, f64, usize)> = (0..num_probes)
        .map(|_| {
            (
                rng.random_range(0.0..1e-3),
                rng.random_range(0.0..1e-3),
                rng.random_range(0..layers),
                rng.random_range(0.0..1e-3),
                rng.random_range(0.0..1e-3),
                rng.random_range(0..layers),
            )
        })
        .collect();
    let price_move_ns = time_ns_per_op(opts.repeats, oracle_probes.len(), || {
        oracle_probes
            .iter()
            .map(|&(fx, fy, fl, tx, ty, tl)| {
                frozen.sample(tx, ty, tl, 1e-3, 1e-3) - frozen.sample(fx, fy, fl, 1e-3, 1e-3)
            })
            .sum()
    });

    // Warm coarse-grid denominator: alternate two power maps 2% apart so
    // every timed solve is a genuine drift solve, never a no-op repeat.
    let coarse_nx = 8usize;
    let coarse_sim = ThermalSimulator::new(
        LayerStack::mitll_0_18um(layers),
        1e-3,
        1e-3,
        coarse_nx,
        coarse_nx,
    )
    .expect("valid geometry");
    let coarse_maps = [
        dense_power(coarse_nx, layers, 1.0),
        dense_power(coarse_nx, layers, 1.02),
    ];
    let mut coarse_ctx = coarse_sim.context_with(Preconditioner::default());
    coarse_sim
        .solve_with(&coarse_maps[0], &mut coarse_ctx)
        .expect("converges");
    let mut coarse_warm_ns = f64::INFINITY;
    for rep in 0..(2 * opts.repeats).max(2) {
        let t = Instant::now();
        coarse_sim
            .solve_with(&coarse_maps[1 - rep % 2], &mut coarse_ctx)
            .expect("converges");
        coarse_warm_ns = coarse_warm_ns.min(t.elapsed().as_nanos() as f64);
    }
    let pricing_speedup = coarse_warm_ns / price_move_ns;

    // --- Multi-start bisection, per thread count -------------------------
    let mut hg = Hypergraph::new(kernel_cells);
    let n = kernel_cells as u32;
    for i in 0..n {
        hg.add_net(&[i, (i + 1) % n], 1.0);
        hg.add_net(&[i, (i * 7 + 13) % n], 1.0);
    }
    hg.finalize();
    let bisect_config = BisectConfig::default().with_starts(8);
    let mut bisection = Vec::new();
    for &threads in thread_counts {
        let ms = tvp_parallel::with_threads(threads, || {
            time_ms(opts.repeats, || bisect(&hg, &bisect_config))
        });
        bisection.push((threads, ms));
    }

    // --- Full pipeline, per thread count ---------------------------------
    let mut pipeline = Vec::new();
    let mut trajectory_iters: Vec<(usize, bool)> = Vec::new();
    for &threads in thread_counts {
        let placer = Placer::new(
            PlacerConfig::new(layers)
                .with_partition_starts(4)
                .with_threads(threads),
        );
        let ms = time_ms(opts.repeats.min(3), || {
            let result = placer.place(&netlist).expect("places");
            if threads == 1 {
                trajectory_iters = result
                    .thermal_trajectory
                    .iter()
                    .map(|s| (s.cg_iterations, s.warm_started))
                    .collect();
            }
            result
        });
        pipeline.push((threads, ms));
    }

    // --- Parallel scaling: per-stage walls and bisection sub-phases ------
    // The placer's own stage clocks give each stage's wall per thread
    // count; speedups are measured against this sweep's threads=1 row.
    // Rows asking for more workers than the host has cores are annotated
    // rather than silently published (they measure scheduling overhead,
    // not speedup).
    struct StageWall {
        threads: usize,
        total_ms: f64,
        global_ms: f64,
        coarse_ms: f64,
        detail_ms: f64,
    }
    let parallel_threads: &[usize] = if opts.smoke { &[1] } else { &[1, 2, 4, 8] };
    let mut stage_walls: Vec<StageWall> = Vec::new();
    for &threads in parallel_threads {
        let placer = Placer::new(
            PlacerConfig::new(layers)
                .with_partition_starts(4)
                .with_threads(threads),
        );
        let mut best: Option<StageWall> = None;
        for _ in 0..opts.repeats.clamp(1, 3) {
            let result = placer.place(&netlist).expect("places");
            let w = StageWall {
                threads,
                total_ms: result.timings.total.as_secs_f64() * 1e3,
                global_ms: result.timings.global.as_secs_f64() * 1e3,
                coarse_ms: result.timings.coarse.as_secs_f64() * 1e3,
                detail_ms: result.timings.detail.as_secs_f64() * 1e3,
            };
            if best.as_ref().is_none_or(|b| w.total_ms < b.total_ms) {
                best = Some(w);
            }
        }
        stage_walls.push(best.expect("at least one repeat"));
    }
    // Bisection sub-phases on the same kernel hypergraph, via the serial
    // profiled entry point (starts run back-to-back so phase clocks don't
    // overlap).
    let free = vec![FixedSide::Free; hg.num_vertices()];
    let (_, bisect_profile) = bisect_fixed_profiled(&hg, &free, &bisect_config);

    // --- Scaling sweep: one fresh child process per cell count -----------
    let mut scale_rows: Vec<String> = Vec::new();
    let exe = std::env::current_exe().expect("current exe");
    for &cells in &opts.cells {
        eprintln!("hotpaths: scaling sweep at {cells} cells...");
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--scale-one").arg(cells.to_string());
        if let Some(stages) = &opts.stages {
            cmd.arg("--stages").arg(
                stages
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        let row = match cmd.output() {
            Ok(out) if out.status.success() => {
                String::from_utf8_lossy(&out.stdout).trim().to_string()
            }
            _ => {
                // Sandboxes that forbid self-exec still get a row, but the
                // RSS reading is then cumulative across sweep sizes.
                eprintln!("hotpaths: child spawn failed, running {cells} in-process");
                scale_row_json(cells, opts.stages.as_deref())
            }
        };
        scale_rows.push(row);
    }

    // --- Report ----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"hotpaths\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    if hw > 1 {
        let _ = writeln!(
            json,
            "  \"note\": \"wall times are best-of-{} ms; hardware_threads = {hw}, so ms_by_threads columns up to {hw} workers measure real parallel speedup (columns beyond that add only scheduling overhead); results are verified identical across thread counts by the test suite\",",
            opts.repeats
        );
    } else {
        let _ = writeln!(
            json,
            "  \"note\": \"wall times are best-of-{} ms; with hardware_threads = 1 a multi-worker run can only measure scheduling overhead, not speedup — results are verified identical across thread counts by the test suite\",",
            opts.repeats
        );
    }
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"thermal_solve\": {{");
    let _ = writeln!(json, "    \"grid\": \"{0}x{0}x{1}\",", opts.grid, layers);
    let _ = writeln!(
        json,
        "    \"cold_ms_by_threads\": {},",
        json_threads_ms(&thermal_cold)
    );
    let _ = writeln!(json, "    \"cold_cg_iterations\": {cold_iterations},");
    let _ = writeln!(json, "    \"warm_2pct_drift_ms\": {warm_ms:.3},");
    let _ = writeln!(
        json,
        "    \"warm_2pct_drift_cg_iterations\": {warm_iterations}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"thermal_scaling\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"cold-solve comparison of the two CG preconditioners; multigrid iteration counts stay nearly flat as the grid grows while Jacobi's climb with the mesh diameter; setup_ms is the one-time hierarchy build, amortized across every warm solve of a placement run\","
    );
    let _ = writeln!(json, "    \"grids\": [");
    for (i, row) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"grid\": \"{0}x{0}x{1}\", \"multigrid\": {{\"cg_iterations\": {2}, \"cold_ms\": {3:.3}, \"setup_ms\": {4:.3}, \"levels\": {5}}}, \"jacobi\": {{\"cg_iterations\": {6}, \"cold_ms\": {7:.3}}}, \"iteration_ratio\": {8:.1}}}{comma}",
            row.nx,
            row.layers,
            row.mg_iterations,
            row.mg_cold_ms,
            row.mg_setup_ms,
            row.mg_levels,
            row.jacobi_iterations,
            row.jacobi_cold_ms,
            row.jacobi_iterations as f64 / row.mg_iterations as f64
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"objective_rebuild\": {{");
    let _ = writeln!(json, "    \"cells\": {},", kernel_cells);
    let _ = writeln!(json, "    \"nets\": {},", netlist.num_nets());
    let _ = writeln!(json, "    \"ms_by_threads\": {}", json_threads_ms(&rebuild));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"netweight\": {{");
    let _ = writeln!(json, "    \"nets\": {},", netlist.num_nets());
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {}",
        json_threads_ms(&netweight)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"delta_pricing\": {{");
    let _ = writeln!(json, "    \"cells\": {},", kernel_cells);
    let _ = writeln!(json, "    \"probes\": {num_probes},");
    let _ = writeln!(json, "    \"high_fanout_cells\": {hf_cells},");
    let _ = writeln!(
        json,
        "    \"note\": \"ns per op, WL+ILV model (default pipeline config); rescan rows run the same probe pattern through the pre-delta-engine full-bbox-rescan kernel (delta_move_rescan) as a live speedup denominator; the swap denominator is four rescan probes per pair, a lower bound on the mutate-and-revert swap (four commits) it replaces\","
    );
    for (i, row) in pricing_rows.iter().enumerate() {
        let comma = if i + 1 < pricing_rows.len() { "," } else { "" };
        match row.rescan_ns_per_op {
            Some(rescan) => {
                let _ = writeln!(
                    json,
                    "    \"{}\": {{\"ns_per_op\": {:.1}, \"rescan_ns_per_op\": {:.1}, \"speedup\": {:.1}}}{comma}",
                    row.name,
                    row.ns_per_op,
                    rescan,
                    rescan / row.ns_per_op
                );
            }
            None => {
                let _ = writeln!(
                    json,
                    "    \"{}\": {{\"ns_per_op\": {:.1}}}{comma}",
                    row.name, row.ns_per_op
                );
            }
        }
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"thermal_oracle\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"compact superposition tier fitted in-tree against the multigrid ground truth; fit errors are relative to the peak impulse-response rise and gated at {}; price_move_ns is two frozen-field probes (what the legalization loops pay per candidate with the compact tier), coarse_warm_solve_ns the {coarse_nx}x{coarse_nx}x{layers} warm multigrid solve it replaces\",",
        compact_params::CROSS_MODEL_GATE
    );
    let _ = writeln!(
        json,
        "    \"fit_grid\": \"{oracle_nx}x{oracle_ny}x{layers}\","
    );
    let _ = writeln!(json, "    \"fit\": {{\"max_rel_error\": {:.4}, \"avg_rel_error\": {:.4}, \"solves\": {}, \"gate\": {}, \"within_gate\": {fit_within_gate}}},", fit.max_rel_error, fit.avg_rel_error, fit.solves, compact_params::CROSS_MODEL_GATE);
    let _ = writeln!(json, "    \"price_move_ns\": {price_move_ns:.1},");
    let _ = writeln!(json, "    \"coarse_warm_solve_ns\": {coarse_warm_ns:.0},");
    let _ = writeln!(
        json,
        "    \"pricing_speedup_vs_coarse_warm_solve\": {pricing_speedup:.0}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"bisection\": {{");
    let _ = writeln!(json, "    \"vertices\": {},", kernel_cells);
    let _ = writeln!(json, "    \"starts\": 8,");
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {}",
        json_threads_ms(&bisection)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pipeline\": {{");
    let _ = writeln!(json, "    \"cells\": {},", kernel_cells);
    let _ = writeln!(json, "    \"partition_starts\": 4,");
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {},",
        json_threads_ms(&pipeline)
    );
    let traj: Vec<String> = trajectory_iters
        .iter()
        .map(|(iters, warm)| format!("{{\"cg_iterations\": {iters}, \"warm_started\": {warm}}}"))
        .collect();
    let _ = writeln!(json, "    \"thermal_trajectory\": [{}]", traj.join(", "));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"parallel_scaling\": {{");
    let _ = writeln!(json, "    \"cells\": {kernel_cells},");
    let _ = writeln!(
        json,
        "    \"note\": \"per-stage wall times from the placer's stage clocks, best-of-{}; speedup_* divides this sweep's threads=1 wall by the row's wall; rows with threads > hardware_threads ({hw} on this host) are annotated hw_limited: true — they can only measure scheduling overhead, never speedup, and are published for completeness because results are verified bitwise identical across thread counts by the test suite\",",
        opts.repeats.clamp(1, 3)
    );
    let _ = writeln!(json, "    \"stage_walls\": [");
    let base = &stage_walls[0];
    for (i, w) in stage_walls.iter().enumerate() {
        let comma = if i + 1 < stage_walls.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {}, \"hw_limited\": {}, \"total_ms\": {:.1}, \"global_ms\": {:.1}, \"coarse_ms\": {:.1}, \"detail_ms\": {:.1}, \"speedup_total\": {:.2}, \"speedup_global\": {:.2}, \"speedup_coarse\": {:.2}}}{comma}",
            w.threads,
            w.threads > hw,
            w.total_ms,
            w.global_ms,
            w.coarse_ms,
            w.detail_ms,
            base.total_ms / w.total_ms,
            base.global_ms / w.global_ms,
            base.coarse_ms / w.coarse_ms,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"bisection_subphases\": {{");
    let _ = writeln!(json, "      \"vertices\": {},", kernel_cells);
    let _ = writeln!(json, "      \"starts\": 8,");
    let _ = writeln!(
        json,
        "      \"note\": \"serial profiled run; times are summed across all starts; per_level depth 0 is the input graph, higher depths its contractions\","
    );
    let _ = writeln!(
        json,
        "      \"coarsen_ms\": {:.3}, \"initial_ms\": {:.3}, \"fm_refine_ms\": {:.3}, \"levels\": {},",
        bisect_profile.coarsen_ms,
        bisect_profile.initial_ms,
        bisect_profile.refine_ms,
        bisect_profile.levels
    );
    let _ = writeln!(json, "      \"per_level\": [");
    for (d, lvl) in bisect_profile.per_level.iter().enumerate() {
        let comma = if d + 1 < bisect_profile.per_level.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "        {{\"depth\": {d}, \"vertices\": {}, \"coarsen_ms\": {:.3}, \"fm_refine_ms\": {:.3}}}{comma}",
            lvl.vertices, lvl.coarsen_ms, lvl.refine_ms
        );
    }
    let _ = writeln!(json, "      ]");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"scaling\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"each row runs in a fresh process so peak_rss_mb is that size's own high-water mark; parse_ms is a pure token scan through the zero-copy stream readers, build_ms the fused streaming parse+assemble (Design::assemble_streaming); place is null above {SCALE_PLACE_MAX} cells, where only ingest is practical to time\","
    );
    let _ = writeln!(json, "    \"rows\": [");
    for (i, row) in scale_rows.iter().enumerate() {
        let comma = if i + 1 < scale_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {row}{comma}");
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("write report");
    println!("{json}");
    eprintln!("hotpaths: wrote {}", opts.out);

    // CI gates (checked after the report is written so the artifact
    // survives a failure for inspection).
    if !fit_within_gate {
        eprintln!(
            "hotpaths: FAIL: compact fit max_rel_error {:.4} exceeds gate {}",
            fit.max_rel_error,
            compact_params::CROSS_MODEL_GATE
        );
        std::process::exit(1);
    }
    if pricing_speedup < 100.0 {
        eprintln!(
            "hotpaths: FAIL: compact pricing is only {pricing_speedup:.0}x the coarse-grid \
             warm solve (acceptance floor is 100x)"
        );
        std::process::exit(1);
    }
}
