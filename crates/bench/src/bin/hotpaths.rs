//! Hot-path timing harness: measures the three parallelized engines
//! (thermal CG solve, objective rebuild, recursive bisection) across a
//! thread sweep plus the warm-start savings, and writes the results as
//! machine-readable JSON (`BENCH_hotpaths.json` by default).
//!
//! The report includes the hardware thread count so the numbers can be
//! read honestly: on a single-core host, extra workers can only add
//! scheduling overhead, and the interesting columns are the warm-start
//! iteration savings and the threads=1 ≡ threads=N result equality.
//!
//! Flags: `--out FILE`, `--cells N`, `--repeats N`, `--grid N`.

use std::fmt::Write as _;
use std::time::Instant;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::netweight::NetWeights;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, Placer, PlacerConfig};
use tvp_partition::{bisect, BisectConfig, Hypergraph};
use tvp_thermal::{LayerStack, PowerMap, ThermalSimulator};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Options {
    out: String,
    cells: usize,
    repeats: usize,
    grid: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_hotpaths.json".to_string(),
        cells: 1_000,
        repeats: 5,
        grid: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} expects a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = value(),
            "--cells" => opts.cells = value().parse().expect("--cells expects an integer"),
            "--repeats" => opts.repeats = value().parse().expect("--repeats expects an integer"),
            "--grid" => opts.grid = value().parse().expect("--grid expects an integer"),
            "--help" | "-h" => {
                eprintln!("flags: --out FILE --cells N --repeats N --grid N");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    opts
}

/// Best-of-`repeats` wall time in milliseconds (min is the standard
/// estimator for noise floors on a shared machine).
fn time_ms<R>(repeats: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn dense_power(nx: usize, layers: usize, scale: f64) -> PowerMap {
    let mut power = PowerMap::new(nx, nx, layers);
    for k in 0..layers {
        for j in 0..nx {
            for i in 0..nx {
                power.add(i, j, k, scale * 1.0e-4 * (1 + (i + j + k) % 5) as f64);
            }
        }
    }
    power
}

fn json_threads_ms(entries: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (threads, ms)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{threads}\": {ms:.3}");
    }
    s.push('}');
    s
}

fn main() {
    let opts = parse_options();
    let hw = tvp_parallel::available_threads();
    eprintln!("hotpaths: {hw} hardware thread(s), sweeping {THREAD_COUNTS:?}");

    // --- Thermal solve: cold vs warm, per thread count -------------------
    let layers = 4usize;
    let sim = ThermalSimulator::new(
        LayerStack::mitll_0_18um(layers),
        1e-3,
        1e-3,
        opts.grid,
        opts.grid,
    )
    .expect("valid geometry");
    let base = dense_power(opts.grid, layers, 1.0);
    let drifted = dense_power(opts.grid, layers, 1.02);

    let mut thermal_cold = Vec::new();
    for &threads in &THREAD_COUNTS {
        let ms = tvp_parallel::with_threads(threads, || {
            time_ms(opts.repeats, || sim.solve(&base).expect("converges"))
        });
        thermal_cold.push((threads, ms));
    }
    let mut ctx = sim.context();
    sim.solve_with(&base, &mut ctx).expect("converges");
    let cold_iterations = ctx.last_stats().expect("solved").iterations;
    let warm_ms = time_ms(opts.repeats, || {
        sim.solve_with(&drifted, &mut ctx).expect("converges")
    });
    let warm_iterations = ctx.last_stats().expect("solved").iterations;

    // --- Objective rebuild + netweight, per thread count -----------------
    let netlist = generate(&SynthConfig::named(
        "hot",
        opts.cells,
        opts.cells as f64 * 5.0e-12,
    ))
    .expect("synth");
    let config = PlacerConfig::new(layers).with_alpha_temp(1.0e-4);
    let chip = Chip::from_netlist(&netlist, &config).expect("chip");
    let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model");
    let placement = Placement::centered(netlist.num_cells(), &chip);
    let mut objective = IncrementalObjective::new(&netlist, &model, placement.clone());

    let mut rebuild = Vec::new();
    let mut netweight = Vec::new();
    for &threads in &THREAD_COUNTS {
        tvp_parallel::with_threads(threads, || {
            rebuild.push((threads, time_ms(opts.repeats, || objective.rebuild())));
            netweight.push((
                threads,
                time_ms(opts.repeats, || {
                    NetWeights::thermal(&netlist, &model, &placement)
                }),
            ));
        });
    }

    // --- Multi-start bisection, per thread count -------------------------
    let mut hg = Hypergraph::new(opts.cells);
    let n = opts.cells as u32;
    for i in 0..n {
        hg.add_net(&[i, (i + 1) % n], 1.0);
        hg.add_net(&[i, (i * 7 + 13) % n], 1.0);
    }
    hg.finalize();
    let bisect_config = BisectConfig::default().with_starts(8);
    let mut bisection = Vec::new();
    for &threads in &THREAD_COUNTS {
        let ms = tvp_parallel::with_threads(threads, || {
            time_ms(opts.repeats, || bisect(&hg, &bisect_config))
        });
        bisection.push((threads, ms));
    }

    // --- Full pipeline, per thread count ---------------------------------
    let mut pipeline = Vec::new();
    let mut trajectory_iters: Vec<(usize, bool)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let placer = Placer::new(
            PlacerConfig::new(layers)
                .with_partition_starts(4)
                .with_threads(threads),
        );
        let ms = time_ms(opts.repeats.min(3), || {
            let result = placer.place(&netlist).expect("places");
            if threads == 1 {
                trajectory_iters = result
                    .thermal_trajectory
                    .iter()
                    .map(|s| (s.cg_iterations, s.warm_started))
                    .collect();
            }
            result
        });
        pipeline.push((threads, ms));
    }

    // --- Report ----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"hotpaths\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(
        json,
        "  \"note\": \"wall times are best-of-{} ms; with hardware_threads = 1 a multi-worker run can only measure scheduling overhead, not speedup — results are verified identical across thread counts by the test suite\",",
        opts.repeats
    );
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        THREAD_COUNTS.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"thermal_solve\": {{");
    let _ = writeln!(json, "    \"grid\": \"{0}x{0}x{1}\",", opts.grid, layers);
    let _ = writeln!(
        json,
        "    \"cold_ms_by_threads\": {},",
        json_threads_ms(&thermal_cold)
    );
    let _ = writeln!(json, "    \"cold_cg_iterations\": {cold_iterations},");
    let _ = writeln!(json, "    \"warm_2pct_drift_ms\": {warm_ms:.3},");
    let _ = writeln!(
        json,
        "    \"warm_2pct_drift_cg_iterations\": {warm_iterations}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"objective_rebuild\": {{");
    let _ = writeln!(json, "    \"cells\": {},", opts.cells);
    let _ = writeln!(json, "    \"nets\": {},", netlist.num_nets());
    let _ = writeln!(json, "    \"ms_by_threads\": {}", json_threads_ms(&rebuild));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"netweight\": {{");
    let _ = writeln!(json, "    \"nets\": {},", netlist.num_nets());
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {}",
        json_threads_ms(&netweight)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"bisection\": {{");
    let _ = writeln!(json, "    \"vertices\": {},", opts.cells);
    let _ = writeln!(json, "    \"starts\": 8,");
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {}",
        json_threads_ms(&bisection)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pipeline\": {{");
    let _ = writeln!(json, "    \"cells\": {},", opts.cells);
    let _ = writeln!(json, "    \"partition_starts\": 4,");
    let _ = writeln!(
        json,
        "    \"ms_by_threads\": {},",
        json_threads_ms(&pipeline)
    );
    let traj: Vec<String> = trajectory_iters
        .iter()
        .map(|(iters, warm)| format!("{{\"cg_iterations\": {iters}, \"warm_started\": {warm}}}"))
        .collect();
    let _ = writeln!(json, "    \"thermal_trajectory\": [{}]", traj.join(", "));
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("write report");
    println!("{json}");
    eprintln!("hotpaths: wrote {}", opts.out);
}
