//! Figure 5: ibm01 tradeoff curves as the number of layers grows from 1 to
//! 10 — more layers shift the curves toward shorter wirelength.

use tvp_bench::{geometric, netlist_of, print_row, run, sci, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(5);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Figure 5: ibm01 ({} cells) tradeoff curves for 1-10 layers",
        netlist.num_cells()
    );
    // A narrower alpha range keeps every curve's knee visible.
    let sweep = geometric(5.0e-8, 1.0e-3, args.points);
    for layers in 1..=10usize {
        println!();
        println!("{layers} layer(s):");
        print_row(&["alpha_ILV".into(), "WL (m)".into(), "ILV/interlayer".into()]);
        for &alpha in &sweep {
            let r = run(&netlist, PlacerConfig::new(layers).with_alpha_ilv(alpha));
            let per_interlayer = if layers > 1 {
                r.metrics.ilv_count / (layers - 1) as f64
            } else {
                0.0
            };
            print_row(&[
                sci(alpha),
                sci(r.metrics.wirelength),
                format!("{per_interlayer:.0}"),
            ]);
        }
    }
    println!();
    println!("(curves shift left — shorter wirelength — as layers are added)");
}
