//! Table 2: experimental parameters, as realized by the default
//! [`PlacerConfig`].

use tvp_core::PlacerConfig;

fn main() {
    let config = PlacerConfig::new(4);
    let stack = &config.stack;
    let tech = &config.tech;
    println!("Table 2: Parameters");
    let rows: Vec<(&str, String)> = vec![
        ("number of layers", config.num_layers.to_string()),
        ("whitespace", format!("{:.0}%", config.whitespace * 100.0)),
        (
            "inter-row/row space",
            format!("{:.0}%", config.row_space * 100.0),
        ),
        (
            "bulk substrate thickness",
            format!("{:.0} um", stack.substrate_thickness * 1e6),
        ),
        (
            "layer thickness",
            format!("{:.1} um", stack.layer_thickness * 1e6),
        ),
        (
            "interlayer thickness",
            format!("{:.1} um", stack.interlayer_thickness * 1e6),
        ),
        (
            "effective stack conductivity",
            format!("{:.1} W/mK", stack.conductivity),
        ),
        (
            "substrate conductivity",
            format!("{:.1} W/mK", stack.substrate_conductivity),
        ),
        (
            "lateral interconnect cap.",
            format!("{:.1} pF/m", tech.cap_per_wirelength * 1e12),
        ),
        (
            "interlayer via cap.",
            format!("{:.0} pF/m", tech.cap_per_ilv_length * 1e12),
        ),
        (
            "input pin capacitance",
            format!("{:.3} fF", tech.input_pin_cap * 1e15),
        ),
        (
            "ambient temperature",
            format!("{:.0} C", stack.heat_sink.ambient),
        ),
        (
            "conv. coef. of heat sink",
            format!("{:.0e} W/m^2K", stack.heat_sink.convection_coefficient),
        ),
        (
            "clock frequency",
            format!("{:.1e} Hz", tech.clock_frequency),
        ),
        ("supply voltage", format!("{:.1} V", tech.vdd)),
        ("default alpha_ILV", format!("{:.0e} m", config.alpha_ilv)),
    ];
    for (name, value) in rows {
        println!("{name:>28} : {value}");
    }
}
