//! Figure 8: percent reduction in ibm01's average temperature vs `α_TEMP`
//! for 1, 2, 4, 6, and 8 layers (α_ILV = 10⁻⁵). More layers give thermal
//! placement more vertical resistance contrast to exploit.

use tvp_bench::{alpha_temp_sweep, netlist_of, pct, run, Args};
use tvp_core::PlacerConfig;
use tvp_netlist::Netlist;

/// Seed-averaged average temperature for one configuration (placement
/// noise at reduced benchmark scales would otherwise drown the trend).
fn avg_temperature(netlist: &Netlist, layers: usize, alpha_temp: f64) -> f64 {
    const SEEDS: [u64; 3] = [1, 2, 3];
    SEEDS
        .iter()
        .map(|&s| {
            run(
                netlist,
                PlacerConfig::new(layers)
                    .with_alpha_temp(alpha_temp)
                    .with_seed(s),
            )
            .metrics
            .avg_temperature
        })
        .sum::<f64>()
        / SEEDS.len() as f64
}

fn main() {
    let args = Args::parse(5);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Figure 8: ibm01 ({} cells) average-temperature reduction vs alpha_TEMP",
        netlist.num_cells()
    );
    let sweep = alpha_temp_sweep(args.points);
    let layer_counts = [1usize, 2, 4, 6, 8];

    print!("{:>12}", "aT \\ layers");
    for &l in &layer_counts {
        print!("{l:>10}");
    }
    println!();

    // Baselines per layer count (α_TEMP = 0).
    let baselines: Vec<f64> = layer_counts
        .iter()
        .map(|&l| avg_temperature(&netlist, l, 0.0))
        .collect();

    for &at in &sweep {
        print!("{at:>12.1e}");
        for (i, &l) in layer_counts.iter().enumerate() {
            let t = avg_temperature(&netlist, l, at);
            let reduction = -pct(t, baselines[i]);
            print!("{reduction:>9.1}%");
        }
        println!();
    }
    println!();
    println!("(reductions grow with the layer count — the stacked dies give the");
    println!(" thermal objective more vertical resistance contrast to exploit)");
}
