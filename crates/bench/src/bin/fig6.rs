//! Figure 6: ibm01 average temperature surface over the
//! (`α_TEMP`, `α_ILV`) grid. Temperatures fall with the thermal
//! coefficient and rise as vias get cheap (via capacitance burns power).

use tvp_bench::{geometric, netlist_of, run, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(5);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Figure 6: ibm01 ({} cells) average temperature (C) over the coefficient grid",
        netlist.num_cells()
    );
    let alpha_ilv = geometric(5.0e-8, 1.6e-3, args.points);
    let alpha_temp = geometric(1.0e-8, 1.3e-3, args.points);

    print!("{:>12}", "aT \\ aILV");
    for &ai in &alpha_ilv {
        print!("{ai:>12.1e}");
    }
    println!();
    for &at in &alpha_temp {
        print!("{at:>12.1e}");
        for &ai in &alpha_ilv {
            let r = run(
                &netlist,
                PlacerConfig::new(4).with_alpha_ilv(ai).with_alpha_temp(at),
            );
            print!("{:>12.3}", r.metrics.avg_temperature);
        }
        println!();
    }
    println!();
    println!(
        "(temperature falls toward the bottom-right: strong thermal weighting, expensive vias)"
    );
}
