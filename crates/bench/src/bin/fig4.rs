//! Figure 4: suite-average ILV density and percent wirelength change vs
//! `α_ILV`, plus the paper's headline operating point ("wirelength within
//! 2% of the maximum reduction using 46% fewer interlayer vias").

use tvp_bench::{alpha_ilv_sweep, netlist_of, pct, print_row, run, sci, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(7);
    let sweep = alpha_ilv_sweep(args.points);
    let suite = args.suite();
    println!(
        "Figure 4: average WL vs ILV tradeoff over {} benchmarks (scale = {})",
        suite.len(),
        args.scale
    );

    // wl[i][k], ilv_density[i][k]: benchmark i at sweep point k.
    let mut wl = vec![vec![0.0f64; sweep.len()]; suite.len()];
    let mut density = vec![vec![0.0f64; sweep.len()]; suite.len()];
    let mut ilv = vec![vec![0.0f64; sweep.len()]; suite.len()];
    for (i, config) in suite.iter().enumerate() {
        let netlist = netlist_of(config);
        for (k, &alpha) in sweep.iter().enumerate() {
            let r = run(&netlist, PlacerConfig::new(4).with_alpha_ilv(alpha));
            wl[i][k] = r.metrics.wirelength;
            density[i][k] = r.metrics.ilv_density_per_interlayer;
            ilv[i][k] = r.metrics.ilv_count;
        }
    }

    // Per-benchmark percent WL change relative to that benchmark's best
    // (shortest) wirelength over the sweep, then suite averages.
    println!();
    print_row(&[
        "alpha_ILV".into(),
        "avg ILV dens".into(),
        "avg dWL %".into(),
        "avg dILV %".into(),
    ]);
    let mut avg_dwl = vec![0.0f64; sweep.len()];
    let mut avg_dilv = vec![0.0f64; sweep.len()];
    let mut avg_density = vec![0.0f64; sweep.len()];
    for i in 0..suite.len() {
        let wl_min = wl[i].iter().copied().fold(f64::INFINITY, f64::min);
        let ilv_max = ilv[i].iter().copied().fold(0.0f64, f64::max);
        for k in 0..sweep.len() {
            avg_dwl[k] += pct(wl[i][k], wl_min) / suite.len() as f64;
            avg_dilv[k] += pct(ilv[i][k], ilv_max) / suite.len() as f64;
            avg_density[k] += density[i][k] / suite.len() as f64;
        }
    }
    for k in 0..sweep.len() {
        print_row(&[
            sci(sweep[k]),
            sci(avg_density[k]),
            format!("{:+.2}", avg_dwl[k]),
            format!("{:+.2}", avg_dilv[k]),
        ]);
    }

    // Headline, computed the way the paper frames it: for each benchmark,
    // find the sweep point with the fewest vias whose wirelength stays
    // within 2% of that benchmark's own best; average the via savings.
    let mut savings_sum = 0.0;
    for i in 0..suite.len() {
        let wl_min = wl[i].iter().copied().fold(f64::INFINITY, f64::min);
        let ilv_max = ilv[i].iter().copied().fold(0.0f64, f64::max);
        let best_k = (0..sweep.len())
            .filter(|&k| wl[i][k] <= wl_min * 1.02)
            .min_by(|&a, &b| ilv[i][a].partial_cmp(&ilv[i][b]).unwrap())
            .expect("the per-benchmark minimum is always within 2%");
        savings_sum += (1.0 - ilv[i][best_k] / ilv_max) * 100.0;
    }
    println!();
    println!(
        "headline: staying within 2% of each benchmark's best wirelength allows \
         {:.0}% fewer interlayer vias on average (paper: 46% fewer)",
        savings_sum / suite.len() as f64,
    );
}
