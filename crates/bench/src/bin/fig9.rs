//! Figure 9: suite-average percent change of via count, wirelength, total
//! power, and average/maximum temperature as `α_TEMP` sweeps upward
//! (α_ILV = 10⁻⁵). The paper's headline: 19% average-temperature reduction
//! at only 1% higher wirelength (and ~10% more vias).

use tvp_bench::{geometric, netlist_of, pct, print_row, run, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(6);
    let suite = args.suite();
    println!(
        "Figure 9: average percent change vs alpha_TEMP over {} benchmarks (scale = {})",
        suite.len(),
        args.scale
    );
    let sweep = geometric(1.0e-8, 4.1e-5, args.points);

    print_row(&[
        "alpha_TEMP".into(),
        "dILV %".into(),
        "dWL %".into(),
        "dPower %".into(),
        "dTavg %".into(),
        "dTmax %".into(),
    ]);

    // Baselines per benchmark.
    let netlists: Vec<_> = suite.iter().map(netlist_of).collect();
    let baselines: Vec<_> = netlists
        .iter()
        .map(|n| run(n, PlacerConfig::new(4)))
        .collect();

    for &at in &sweep {
        let mut d = [0.0f64; 5];
        for (netlist, base) in netlists.iter().zip(&baselines) {
            let r = run(netlist, PlacerConfig::new(4).with_alpha_temp(at));
            let b = &base.metrics;
            let m = &r.metrics;
            d[0] += pct(m.ilv_count, b.ilv_count);
            d[1] += pct(m.wirelength, b.wirelength);
            d[2] += pct(m.total_power, b.total_power);
            d[3] += pct(m.avg_temperature, b.avg_temperature);
            d[4] += pct(m.max_temperature, b.max_temperature);
        }
        for v in &mut d {
            *v /= suite.len() as f64;
        }
        print_row(&[
            format!("{at:.2e}"),
            format!("{:+.2}", d[0]),
            format!("{:+.2}", d[1]),
            format!("{:+.2}", d[2]),
            format!("{:+.2}", d[3]),
            format!("{:+.2}", d[4]),
        ]);
    }
    println!();
    println!("(paper: temperatures fall ~19% while wirelength rises ~1% and vias ~10%)");
}
