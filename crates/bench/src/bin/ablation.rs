//! Ablation study of the design choices DESIGN.md §7 calls out: each row
//! disables one mechanism and reports the quality impact on ibm01.

use tvp_bench::{netlist_of, pct, print_row, run, Args, Run};
use tvp_core::{PlacerConfig, ShiftStrategy};

fn main() {
    let args = Args::parse(0);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Ablation study on ibm01 ({} cells, scale = {})",
        netlist.num_cells(),
        args.scale
    );

    // Thermal run as the reference: most mechanisms only act with
    // alpha_temp > 0. Every variant is averaged over several seeds so the
    // deltas rise above placement noise.
    const SEEDS: [u64; 3] = [1, 2, 3];
    let average = |config: &PlacerConfig| -> Run {
        let runs: Vec<Run> = SEEDS
            .iter()
            .map(|&s| run(&netlist, config.clone().with_seed(s)))
            .collect();
        let n = runs.len() as f64;
        let mut mean = runs[0];
        mean.metrics.objective = runs.iter().map(|r| r.metrics.objective).sum::<f64>() / n;
        mean.metrics.wirelength = runs.iter().map(|r| r.metrics.wirelength).sum::<f64>() / n;
        mean.metrics.ilv_count = runs.iter().map(|r| r.metrics.ilv_count).sum::<f64>() / n;
        mean.metrics.avg_temperature =
            runs.iter().map(|r| r.metrics.avg_temperature).sum::<f64>() / n;
        mean.seconds = runs.iter().map(|r| r.seconds).sum::<f64>() / n;
        mean
    };
    let reference_config = PlacerConfig::new(4).with_alpha_temp(1.0e-5);
    let reference = average(&reference_config);

    let variants: Vec<(&str, PlacerConfig)> = vec![
        ("reference (all on)", reference_config.clone()),
        ("no terminal propagation", {
            let mut c = reference_config.clone();
            c.terminal_propagation = false;
            c
        }),
        ("no TRR nets", {
            let mut c = reference_config.clone();
            c.trr_nets = false;
            c
        }),
        ("no thermal net weights", {
            let mut c = reference_config.clone();
            c.thermal_net_weights = false;
            c
        }),
        ("no PEKO floors", {
            let mut c = reference_config.clone();
            c.peko_floors = false;
            c
        }),
        ("unweighted cut depth", {
            let mut c = reference_config.clone();
            c.weighted_depth_cut = false;
            c
        }),
        ("FastPlace-style shifting", {
            let mut c = reference_config.clone();
            c.shift_strategy = ShiftStrategy::AdjacentPair;
            c
        }),
    ];

    println!();
    print_row(&[
        "variant".into(),
        "objective".into(),
        "dObj %".into(),
        "WL (m)".into(),
        "ILV".into(),
        "Tavg (C)".into(),
        "time (s)".into(),
    ]);
    for (name, config) in variants {
        let r: Run = average(&config);
        print_row(&[
            name.into(),
            format!("{:.4e}", r.metrics.objective),
            format!(
                "{:+.2}",
                pct(r.metrics.objective, reference.metrics.objective)
            ),
            format!("{:.4e}", r.metrics.wirelength),
            format!("{:.0}", r.metrics.ilv_count),
            format!("{:.3}", r.metrics.avg_temperature),
            format!("{:.2}", r.seconds),
        ]);
    }
    println!();
    println!("(positive dObj % = the disabled mechanism was helping)");
}
