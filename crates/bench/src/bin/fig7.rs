//! Figure 7: ibm01 wirelength/via-count tradeoff curves as both the
//! thermal and interlayer-via coefficients vary — raising `α_TEMP`
//! degrades the curves toward longer wires and more vias.

use tvp_bench::{geometric, netlist_of, print_row, run, sci, Args};
use tvp_core::PlacerConfig;

fn main() {
    let args = Args::parse(5);
    let netlist = netlist_of(&args.ibm01());
    println!(
        "Figure 7: ibm01 ({} cells) tradeoff curves under thermal pressure",
        netlist.num_cells()
    );
    let alpha_ilv = geometric(5.0e-8, 1.6e-3, args.points);
    let alpha_temp = [0.0, 1.0e-6, 1.0e-5, 1.0e-4, 1.0e-3];
    for &at in &alpha_temp {
        println!();
        println!("alpha_TEMP = {at:.1e}:");
        print_row(&["alpha_ILV".into(), "WL (m)".into(), "ILV count".into()]);
        for &ai in &alpha_ilv {
            let r = run(
                &netlist,
                PlacerConfig::new(4).with_alpha_ilv(ai).with_alpha_temp(at),
            );
            print_row(&[
                sci(ai),
                sci(r.metrics.wirelength),
                format!("{:.0}", r.metrics.ilv_count),
            ]);
        }
    }
    println!();
    println!("(each thermal step moves the whole curve up and right)");
}
