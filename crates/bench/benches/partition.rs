//! Criterion micro-benchmarks for the multilevel bisector — the inner loop
//! of global placement (hMetis's role in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tvp_bench::netlist_of;
use tvp_bookshelf::synth::SynthConfig;
use tvp_partition::{bisect, BisectConfig, Hypergraph};

fn hypergraph_from(cells: usize) -> Hypergraph {
    let netlist = netlist_of(&SynthConfig::named("b", cells, cells as f64 * 5.0e-12));
    let weights: Vec<f64> = netlist.cells().iter().map(|c| c.area()).collect();
    let mut hg = Hypergraph::with_vertex_weights(weights);
    for (nid, _) in netlist.iter_nets() {
        let pins: Vec<u32> = netlist
            .net_pins(nid)
            .iter()
            .map(|&p| netlist.pin(p).cell().index() as u32)
            .collect();
        hg.add_net(&pins, 1.0);
    }
    hg.finalize();
    hg
}

fn bench_bisect(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisect");
    group.sample_size(20);
    for cells in [500usize, 2_000, 8_000] {
        let hg = hypergraph_from(cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &hg, |b, hg| {
            b.iter(|| black_box(bisect(hg, &BisectConfig::default())))
        });
    }
    group.finish();
}

fn bench_restarts(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisect_restarts");
    group.sample_size(15);
    let hg = hypergraph_from(2_000);
    for starts in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(starts), &starts, |b, &s| {
            b.iter(|| black_box(bisect(&hg, &BisectConfig::default().with_starts(s))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bisect, bench_restarts);
criterion_main!(benches);
