//! Criterion benchmarks for Bookshelf parsing/writing and benchmark
//! generation — the I/O path a user hits before placement starts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_bookshelf::{
    parse_nets, parse_nodes, write_nets, write_nodes, Design, DesignBuilderOptions,
};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_generate");
    group.sample_size(20);
    for cells in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, &n| {
            let config = SynthConfig::named("g", n, n as f64 * 5.0e-12);
            b.iter(|| black_box(generate(&config).expect("generates")))
        });
    }
    group.finish();
}

fn bench_parse_roundtrip(c: &mut Criterion) {
    let netlist = generate(&SynthConfig::named("p", 5_000, 2.5e-8)).expect("generates");
    let design = Design::from_netlist("p", netlist);
    let (nodes, nets, _, _) = design.to_files(DesignBuilderOptions::default());
    let nodes_text = write_nodes(&nodes);
    let nets_text = write_nets(&nets);
    let mut group = c.benchmark_group("bookshelf_parse_5k");
    group.sample_size(20);
    group.bench_function("nodes", |b| {
        b.iter(|| black_box(parse_nodes(&nodes_text).expect("parses")))
    });
    group.bench_function("nets", |b| {
        b.iter(|| black_box(parse_nets(&nets_text).expect("parses")))
    });
    group.bench_function("write_nets", |b| b.iter(|| black_box(write_nets(&nets))));
    group.finish();
}

criterion_group!(benches, bench_generate, bench_parse_roundtrip);
criterion_main!(benches);
