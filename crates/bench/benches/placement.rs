//! Criterion benchmarks for the full pipeline and the global-placement
//! stage (the Fig. 10 runtime story at micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tvp_bench::netlist_of;
use tvp_bookshelf::synth::SynthConfig;
use tvp_core::global::global_place;
use tvp_core::objective::ObjectiveModel;
use tvp_core::{Chip, Placer, PlacerConfig};

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_full");
    group.sample_size(10);
    for cells in [250usize, 1_000] {
        let netlist = netlist_of(&SynthConfig::named("b", cells, cells as f64 * 5.0e-12));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &netlist, |b, n| {
            b.iter(|| black_box(Placer::new(PlacerConfig::new(4)).place(n).expect("places")))
        });
    }
    group.finish();
}

fn bench_global_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_place");
    group.sample_size(10);
    for cells in [1_000usize, 4_000] {
        let netlist = netlist_of(&SynthConfig::named("b", cells, cells as f64 * 5.0e-12));
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).expect("valid");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(cells),
            &(netlist, chip, model, config),
            |b, (netlist, chip, model, config)| {
                b.iter(|| black_box(global_place(netlist, chip, model, config)))
            },
        );
    }
    group.finish();
}

fn bench_thermal_pipeline(c: &mut Criterion) {
    let netlist = netlist_of(&SynthConfig::named("b", 1_000, 5.0e-9));
    let mut group = c.benchmark_group("place_thermal");
    group.sample_size(10);
    group.bench_function("1000_cells_alpha_temp_1e-5", |b| {
        b.iter(|| {
            black_box(
                Placer::new(PlacerConfig::new(4).with_alpha_temp(1.0e-5))
                    .place(&netlist)
                    .expect("places"),
            )
        })
    });
    group.finish();
}

/// The full pipeline at a few worker-thread counts. The placement is
/// identical at every count (see DESIGN.md, threading model); only the
/// wall clock changes, and only on multi-core hardware.
fn bench_pipeline_threads(c: &mut Criterion) {
    let netlist = netlist_of(&SynthConfig::named("b", 1_000, 5.0e-9));
    let mut group = c.benchmark_group("place_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        Placer::new(
                            PlacerConfig::new(4)
                                .with_partition_starts(4)
                                .with_threads(threads),
                        )
                        .place(&netlist)
                        .expect("places"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_global_stage,
    bench_thermal_pipeline,
    bench_pipeline_threads
);
criterion_main!(benches);
