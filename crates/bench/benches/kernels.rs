//! Criterion micro-benchmarks for the fused parallel kernels (DESIGN.md
//! §16): one FM refinement in isolation — no coarsening, no restarts —
//! and one batched coarse global pass (the propose/commit pricing
//! engine), so kernel-level regressions show up without the noise of the
//! surrounding V-cycle or stage loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use tvp_bench::netlist_of;
use tvp_bookshelf::synth::SynthConfig;
use tvp_core::coarse::moves::global_pass;
use tvp_core::coarse::DensityMesh;
use tvp_core::global::global_place;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, PlacerConfig};
use tvp_partition::{bench_hooks, BisectConfig, Hypergraph};

fn hypergraph_from(cells: usize) -> Hypergraph {
    let netlist = netlist_of(&SynthConfig::named("k", cells, cells as f64 * 5.0e-12));
    let weights: Vec<f64> = netlist.cells().iter().map(|c| c.area()).collect();
    let mut hg = Hypergraph::with_vertex_weights(weights);
    for (nid, _) in netlist.iter_nets() {
        let pins: Vec<u32> = netlist
            .net_pins(nid)
            .iter()
            .map(|&p| netlist.pin(p).cell().index() as u32)
            .collect();
        hg.add_net(&pins, 1.0);
    }
    hg.finalize();
    hg
}

/// FM refinement on the flat (uncoarsened) graph, from an alternating
/// starting assignment — the heaviest single refine call a V-cycle makes.
fn bench_fm_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_refine_flat");
    group.sample_size(20);
    for cells in [2_000usize, 8_000] {
        let hg = hypergraph_from(cells);
        let start: Vec<u8> = (0..hg.num_vertices()).map(|v| (v % 2) as u8).collect();
        let config = BisectConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(cells), &hg, |b, hg| {
            b.iter(|| {
                let mut sides = start.clone();
                black_box(bench_hooks::fm_refine(hg, &mut sides, &config))
            })
        });
    }
    group.finish();
}

/// One coarse global pass over a freshly global-placed design: batch
/// candidate generation, parallel frozen-snapshot pricing, and the serial
/// re-validate/commit phase.
fn bench_coarse_batch_pricing(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarse_global_pass");
    group.sample_size(10);
    for cells in [1_000usize, 4_000] {
        let netlist = netlist_of(&SynthConfig::named("k", cells, cells as f64 * 5.0e-12));
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).expect("valid");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("valid");
        let placement = global_place(&netlist, &chip, &model, &config);
        group.bench_with_input(
            BenchmarkId::from_parameter(cells),
            &placement,
            |b, placement| {
                b.iter(|| {
                    let mut objective =
                        IncrementalObjective::new(&netlist, &model, placement.clone());
                    let mut mesh = DensityMesh::coarse(&chip);
                    mesh.rebuild(&netlist, objective.placement());
                    let mut rng = SmallRng::seed_from_u64(7);
                    black_box(global_pass(
                        &mut objective,
                        &mut mesh,
                        &netlist,
                        &chip,
                        config.coarse_target_region_bins,
                        &mut rng,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The cell-shifting kernels (DESIGN.md §17): the Eq. 16 single-row
/// boundary solve in isolation, and one full row-parallel shift pass
/// (plan + commit) at 10k cells from a global-placed start.
fn bench_shift_kernels(c: &mut Criterion) {
    use tvp_core::coarse::shift::{bench_hooks as shift_hooks, shift_pass_stats};
    use tvp_core::ShiftStrategy;

    let mut group = c.benchmark_group("shift_kernels");
    group.sample_size(20);

    // Single-row boundary solve: a congested 64-bin density profile.
    let densities: Vec<f64> = (0..64)
        .map(|i| {
            if i % 7 == 0 {
                2.5
            } else {
                0.4 + 0.01 * i as f64
            }
        })
        .collect();
    group.bench_function("row_solve_64", |b| {
        b.iter(|| black_box(shift_hooks::row_scale_factors(black_box(&densities), 1.10)))
    });

    // Full pass at 10k: every x row and y row planned and committed once.
    let cells = 10_000usize;
    let netlist = netlist_of(&SynthConfig::named("k", cells, cells as f64 * 5.0e-12));
    let config = PlacerConfig::new(4);
    let chip = Chip::from_netlist(&netlist, &config).expect("valid");
    let model = ObjectiveModel::new(&netlist, &chip, &config).expect("valid");
    let placement = global_place(&netlist, &chip, &model, &config);
    group.sample_size(10);
    group.bench_function("full_pass_10k", |b| {
        b.iter(|| {
            let mut objective = IncrementalObjective::new(&netlist, &model, placement.clone());
            let mut mesh = DensityMesh::coarse(&chip);
            mesh.rebuild(&netlist, objective.placement());
            black_box(shift_pass_stats(
                &mut objective,
                &mut mesh,
                &netlist,
                &chip,
                config.coarse_max_density,
                ShiftStrategy::WholeRow,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fm_pass,
    bench_coarse_batch_pricing,
    bench_shift_kernels
);
criterion_main!(benches);
