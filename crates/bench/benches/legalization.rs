//! Criterion benchmarks for the legalization stages: cell shifting,
//! moves/swaps, and the row-based detailed legalizer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tvp_bench::netlist_of;
use tvp_bookshelf::synth::SynthConfig;
use tvp_core::coarse::{coarse_legalize, DensityMesh};
use tvp_core::detail::detail_legalize;
use tvp_core::global::global_place;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, PlacerConfig};

fn fixture(
    cells: usize,
) -> (
    tvp_netlist::Netlist,
    Chip,
    ObjectiveModel,
    PlacerConfig,
    tvp_core::Placement,
) {
    let netlist = netlist_of(&SynthConfig::named("b", cells, cells as f64 * 5.0e-12));
    let config = PlacerConfig::new(4);
    let chip = Chip::from_netlist(&netlist, &config).expect("valid");
    let model = ObjectiveModel::new(&netlist, &chip, &config).expect("valid");
    let placement = global_place(&netlist, &chip, &model, &config);
    (netlist, chip, model, config, placement)
}

fn bench_coarse(c: &mut Criterion) {
    let (netlist, chip, model, config, placement) = fixture(1_000);
    let mut group = c.benchmark_group("coarse_legalize");
    group.sample_size(10);
    group.bench_function("1000_cells", |b| {
        b.iter(|| {
            let mut objective = IncrementalObjective::new(&netlist, &model, placement.clone());
            black_box(coarse_legalize(&mut objective, &netlist, &chip, &config));
        })
    });
    group.finish();
}

fn bench_detail(c: &mut Criterion) {
    let (netlist, chip, model, config, placement) = fixture(1_000);
    // Pre-run coarse once so detail sees its usual input.
    let mut objective = IncrementalObjective::new(&netlist, &model, placement);
    coarse_legalize(&mut objective, &netlist, &chip, &config);
    let coarse_placement = objective.placement().clone();
    let mut group = c.benchmark_group("detail_legalize");
    group.sample_size(10);
    group.bench_function("1000_cells", |b| {
        b.iter(|| {
            let mut objective =
                IncrementalObjective::new(&netlist, &model, coarse_placement.clone());
            black_box(detail_legalize(
                &mut objective,
                &netlist,
                &chip,
                config.detail_row_window,
            ));
        })
    });
    group.finish();
}

fn bench_density_mesh(c: &mut Criterion) {
    let (netlist, chip, _, _, placement) = fixture(4_000);
    c.bench_function("density_mesh_rebuild_4000", |b| {
        let mut mesh = DensityMesh::coarse(&chip);
        b.iter(|| {
            mesh.rebuild(&netlist, &placement);
            black_box(mesh.max_density())
        })
    });
}

criterion_group!(benches, bench_coarse, bench_detail, bench_density_mesh);
criterion_main!(benches);
