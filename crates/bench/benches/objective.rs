//! Criterion benchmarks for the incremental objective's delta kernel:
//! move/swap pricing (read-only probes), commit, and the full-rescan
//! reference kernel the delta engine replaced (DESIGN.md §11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tvp_bench::netlist_of;
use tvp_bookshelf::synth::SynthConfig;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, PlacerConfig};
use tvp_netlist::{CellId, Netlist};

struct Fixture {
    netlist: Netlist,
    chip: Chip,
    scattered: Placement,
    probes: Vec<(CellId, f64, f64, u16)>,
    pairs: Vec<(CellId, CellId)>,
}

fn fixture(cells: usize) -> Fixture {
    let netlist = netlist_of(&SynthConfig::named("d", cells, cells as f64 * 5.0e-12));
    let config = PlacerConfig::new(4);
    let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut scattered = Placement::centered(netlist.num_cells(), &chip);
    for i in 0..netlist.num_cells() {
        scattered.set(
            CellId::new(i),
            rng.random_range(0.0..chip.width),
            rng.random_range(0.0..chip.depth),
            rng.random_range(0..chip.num_layers as u16),
        );
    }
    let probes = (0..4096)
        .map(|_| {
            (
                CellId::new(rng.random_range(0..netlist.num_cells())),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            )
        })
        .collect();
    let pairs = (0..1024)
        .map(|_| {
            let a = rng.random_range(0..netlist.num_cells());
            let mut b = rng.random_range(0..netlist.num_cells());
            if b == a {
                b = (b + 1) % netlist.num_cells();
            }
            (CellId::new(a), CellId::new(b))
        })
        .collect();
    Fixture {
        netlist,
        chip,
        scattered,
        probes,
        pairs,
    }
}

fn bench_move_pricing(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_move_pricing");
    for cells in [1_000usize, 4_000] {
        let f = fixture(cells);
        let config = PlacerConfig::new(4);
        let model = ObjectiveModel::new(&f.netlist, &f.chip, &config).expect("model builds");
        let obj = IncrementalObjective::new(&f.netlist, &model, f.scattered.clone());
        group.bench_with_input(BenchmarkId::new("delta", cells), &f, |b, f| {
            b.iter(|| {
                f.probes
                    .iter()
                    .map(|&(cell, x, y, l)| obj.delta_move(cell, x, y, l))
                    .sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("rescan_reference", cells), &f, |b, f| {
            b.iter(|| {
                f.probes
                    .iter()
                    .map(|&(cell, x, y, l)| obj.delta_move_rescan(cell, x, y, l))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_swap_pricing(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_swap_pricing");
    let cells = 1_000usize;
    let f = fixture(cells);
    let config = PlacerConfig::new(4);
    let model = ObjectiveModel::new(&f.netlist, &f.chip, &config).expect("model builds");
    let obj = IncrementalObjective::new(&f.netlist, &model, f.scattered.clone());
    group.bench_with_input(BenchmarkId::from_parameter(cells), &f, |b, f| {
        b.iter(|| {
            f.pairs
                .iter()
                .map(|&(a, bc)| obj.delta_swap(a, bc))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_commit");
    group.sample_size(20);
    let cells = 1_000usize;
    let f = fixture(cells);
    let config = PlacerConfig::new(4);
    let model = ObjectiveModel::new(&f.netlist, &f.chip, &config).expect("model builds");
    group.bench_with_input(BenchmarkId::from_parameter(cells), &f, |b, f| {
        b.iter(|| {
            let mut obj = IncrementalObjective::new(&f.netlist, &model, f.scattered.clone());
            let mut acc = 0.0;
            for &(cell, x, y, l) in &f.probes {
                acc += obj.apply_move(cell, x, y, l);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_move_pricing,
    bench_swap_pricing,
    bench_commit
);
criterion_main!(benches);
