//! Criterion micro-benchmarks for the finite-volume thermal solver — the
//! cost of each temperature evaluation in the experiment harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tvp_thermal::{LayerStack, PowerMap, Preconditioner, ThermalSimulator};

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_solve");
    group.sample_size(20);
    for &(nx, layers) in &[(8usize, 4usize), (16, 4), (32, 4), (16, 8)] {
        let sim = ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1e-3, 1e-3, nx, nx)
            .expect("valid geometry");
        let mut power = PowerMap::new(nx, nx, layers);
        for k in 0..layers {
            for j in 0..nx {
                for i in 0..nx {
                    power.add(i, j, k, 1.0e-4 * ((i + j + k) % 5) as f64);
                }
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{nx}x{layers}")),
            &(sim, power),
            |b, (sim, power)| b.iter(|| black_box(sim.solve(power).expect("converges"))),
        );
    }
    group.finish();
}

/// Cold starts vs. warm starts on a slowly-drifting power map — the
/// access pattern of the placement pipeline's stage-boundary solves.
fn bench_warm_start(c: &mut Criterion) {
    let (nx, layers) = (32usize, 4usize);
    let sim = ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1e-3, 1e-3, nx, nx)
        .expect("valid geometry");
    let make_power = |scale: f64| {
        let mut power = PowerMap::new(nx, nx, layers);
        for k in 0..layers {
            for j in 0..nx {
                for i in 0..nx {
                    power.add(i, j, k, scale * 1.0e-4 * (1 + (i + j + k) % 5) as f64);
                }
            }
        }
        power
    };
    let base = make_power(1.0);
    let drifted = make_power(1.02);
    let mut group = c.benchmark_group("thermal_warm_start");
    group.sample_size(20);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(sim.solve(&base).expect("converges")))
    });
    group.bench_function("warm_2pct_drift", |b| {
        let mut ctx = sim.context();
        sim.solve_with(&base, &mut ctx).expect("converges");
        b.iter(|| black_box(sim.solve_with(&drifted, &mut ctx).expect("converges")))
    });
    group.finish();
}

/// The parallel stencil/CG paths at a few thread counts. On a single
/// hardware thread extra workers only add scheduling overhead; this
/// group exists to quantify that overhead honestly.
fn bench_solve_threads(c: &mut Criterion) {
    let (nx, layers) = (32usize, 4usize);
    let sim = ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1e-3, 1e-3, nx, nx)
        .expect("valid geometry");
    let mut power = PowerMap::new(nx, nx, layers);
    for k in 0..layers {
        for j in 0..nx {
            for i in 0..nx {
                power.add(i, j, k, 1.0e-4 * (1 + (i + j + k) % 5) as f64);
            }
        }
    }
    let mut group = c.benchmark_group("thermal_solve_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    tvp_parallel::with_threads(threads, || {
                        black_box(sim.solve(&power).expect("converges"))
                    })
                })
            },
        );
    }
    group.finish();
}

/// One preconditioner application — the unit of work CG pays per
/// iteration. A multigrid V-cycle costs several stencil sweeps where a
/// Jacobi application costs one fused diagonal scale; this group prices
/// that trade so the iteration counts in `thermal_scaling` (see
/// `BENCH_hotpaths.json`) can be read as wall time.
fn bench_precond_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_precond_apply");
    group.sample_size(20);
    for &(nx, layers) in &[(32usize, 4usize), (64, 8)] {
        let sim = ThermalSimulator::new(LayerStack::mitll_0_18um(layers), 1e-3, 1e-3, nx, nx)
            .expect("valid geometry");
        let n = nx * nx * layers;
        // A non-trivial residual-like input: alternating signs with a
        // smooth ramp, so the V-cycle's smoother and coarse correction
        // both have real work to do.
        let r: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 } * (1.0 + i as f64 / n as f64))
            .collect();
        let mut z = vec![0.0; n];
        for (name, precond) in [
            ("jacobi", Preconditioner::Jacobi),
            ("vcycle", Preconditioner::default()),
        ] {
            let mut ctx = sim.context_with(precond);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{nx}x{nx}x{layers}")),
                &(),
                |b, ()| b.iter(|| black_box(ctx.apply_preconditioner(&r, &mut z))),
            );
        }
    }
    group.finish();
}

fn bench_resistance_model(c: &mut Criterion) {
    use tvp_thermal::ResistanceModel;
    let model = ResistanceModel::new(LayerStack::mitll_0_18um(4), 1e-3, 1e-3).expect("valid");
    c.bench_function("cell_resistance_1e5_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100_000u32 {
                let x = (i % 1000) as f64 * 1e-6;
                acc += model.cell_resistance(x, 0.5e-3, (i % 4) as usize, 2.5e-11);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_solve,
    bench_warm_start,
    bench_solve_threads,
    bench_precond_apply,
    bench_resistance_model
);
criterion_main!(benches);
