//! The parallel execution engine behind the placer's hot paths.
//!
//! The build environment has no crates.io access, so this crate plays the
//! role rayon would: a process-global pool of worker threads plus a small
//! set of structured primitives ([`join`], [`map_chunks`],
//! [`for_each_chunk_mut`], [`map_indexed`]) that the thermal solver,
//! objective rebuild, and recursive bisection are written against.
//!
//! # Determinism contract
//!
//! Results must not depend on *how many* threads execute a call — only on
//! the input data. Two rules enforce that:
//!
//! 1. **Chunking is a pure function of data length.** [`chunk_ranges`]
//!    never consults the thread count, so the same input always produces
//!    the same chunk boundaries regardless of `--threads`.
//! 2. **Reductions fold chunk partials in chunk order** on the calling
//!    thread. Floating-point sums are therefore bitwise identical for any
//!    thread count ≥ 2. (Callers keep their original single-accumulator
//!    loop for the `threads == 1` path, which stays bitwise identical to
//!    the historical serial engine; the two paths agree to ~1e-9
//!    relative, which the equivalence test suite enforces.)
//!
//! # Thread-count scoping
//!
//! The effective thread count is resolved per *task tree*, not globally:
//! [`with_threads`] installs a thread-local override for the duration of
//! a closure, and every task spawned underneath inherits it. This keeps
//! concurrent placer runs with different `--threads` settings (e.g. the
//! equivalence tests, which run serial and parallel placements from the
//! same process) fully isolated from each other. [`set_threads`] sets the
//! process-wide default used when no scope is active.
//!
//! # Blocking and nesting
//!
//! Structured calls block until their tasks finish, and while blocked the
//! caller *helps*: it pops and runs queued jobs instead of sleeping. That
//! makes arbitrarily nested parallelism (the recursive bisection tree)
//! deadlock-free even when every worker is itself blocked in a nested
//! call. Panics inside tasks are caught, forwarded, and re-thrown on the
//! calling thread after the whole batch has drained, so a panicking task
//! can never leave a borrowed-scope job alive behind the caller's back.

mod budget;

pub use budget::{ThreadBudget, ThreadLease};

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Hard ceiling on the worker pool, far above any sane `--threads`.
const MAX_THREADS: usize = 256;

/// Upper bound on chunks per structured call. Bounds scheduling overhead
/// while staying independent of the thread count (determinism rule 1).
const MAX_CHUNKS: usize = 64;

/// A queued unit of work. Lifetimes are erased when jobs enter the queue;
/// the latch protocol in [`run_tasks`] guarantees the borrow outlives the
/// job (the caller cannot return until every task has completed).
type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    state: Mutex<PoolState>,
    work_available: Condvar,
}

struct PoolState {
    queue: VecDeque<Job>,
    spawned: usize,
}

/// Process-wide default thread count; 0 = unset (resolve to hardware).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scope override installed by [`with_threads`]; 0 = none.
    static SCOPE_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        work_available: Condvar::new(),
    })
}

/// The number of hardware threads available, at least 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide default thread count. `0` means "use all
/// hardware threads". Scoped overrides from [`with_threads`] win over
/// this default.
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// The effective thread count at this point: the innermost
/// [`with_threads`] scope if one is active, else the [`set_threads`]
/// default, else the hardware parallelism.
pub fn threads() -> usize {
    let scoped = SCOPE_THREADS.with(Cell::get);
    if scoped != 0 {
        return scoped;
    }
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => available_threads(),
        n => n,
    }
}

/// Runs `f` with the effective thread count pinned to `n` (`0` = use all
/// hardware threads). Tasks spawned inside inherit the pinned count, so
/// an entire placement pipeline can be scoped with one call. Scopes nest;
/// the previous value is restored on exit (including on panic).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = if n == 0 {
        available_threads()
    } else {
        n.min(MAX_THREADS)
    };
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SCOPE_THREADS.with(|c| c.replace(n)));
    f()
}

/// Completion latch for one batch of tasks, carrying the first panic.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// Locks a pool/latch mutex, recovering from poisoning. Task panics are
/// caught by `run_tasks` and re-thrown on the caller, so a poisoned lock
/// only means some thread died between guarded statements — the guarded
/// state itself is never left mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock(&self.state);
        if st.panic.is_none() {
            st.panic = panic;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

fn ensure_workers(wanted: usize) {
    let pool = pool();
    let mut st = lock(&pool.state);
    while st.spawned < wanted.min(MAX_THREADS - 1) {
        st.spawned += 1;
        let spawned = std::thread::Builder::new()
            .name(format!("tvp-worker-{}", st.spawned))
            .spawn(worker_loop);
        if spawned.is_err() {
            // Out of OS threads: run with however many workers exist.
            // The help-while-waiting loop keeps every batch live even
            // with zero workers, so this only costs parallelism.
            st.spawned -= 1;
            break;
        }
    }
}

fn worker_loop() {
    let pool = pool();
    loop {
        let job = {
            let mut st = lock(&pool.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = pool
                    .work_available
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

/// Runs every task in the batch, in parallel when the effective thread
/// count allows, and returns once all have completed. Panics from tasks
/// are re-thrown here after the batch drains.
///
/// This is the primitive underneath the typed helpers; prefer those.
pub fn run_tasks<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let eff = threads();
    if eff <= 1 || tasks.len() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    ensure_workers(eff - 1);
    let latch = Arc::new(Latch::new(tasks.len()));
    {
        let pool = pool();
        let mut st = lock(&pool.state);
        for task in tasks {
            let latch = Arc::clone(&latch);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                // Workers inherit the spawner's effective thread count so
                // nested structured calls see a consistent value.
                let result = with_threads(eff, || panic::catch_unwind(AssertUnwindSafe(task)));
                latch.complete(result.err());
            });
            // SAFETY: the job borrows data that lives for 'scope. This
            // function does not return until `latch` reports all jobs
            // complete (see wait loop below), so the borrow is live for
            // the job's entire execution. The fat-pointer layout of the
            // trait object is unchanged by the lifetime erasure.
            let job: Job = unsafe { std::mem::transmute(job) };
            st.queue.push_back(job);
        }
        pool.work_available.notify_all();
    }
    // Help-while-waiting: run queued jobs (ours or anyone's) instead of
    // sleeping, so nested batches can always make progress.
    loop {
        let job = lock(&pool().state).queue.pop_front();
        if let Some(job) = job {
            job();
            continue;
        }
        let st = lock(&latch.state);
        if st.remaining == 0 {
            break;
        }
        // Timed wait: a job enqueued between the pop attempt above and
        // this wait would otherwise leave us sleeping on the wrong
        // condvar; the timeout re-polls the queue.
        drop(
            latch
                .done
                .wait_timeout(st, Duration::from_micros(200))
                .unwrap_or_else(PoisonError::into_inner),
        );
    }
    let panic = lock(&latch.state).panic.take();
    if let Some(panic) = panic {
        panic::resume_unwind(panic);
    }
}

/// Splits `0..len` into contiguous ranges of at least `min_chunk`
/// elements (bounded by `MAX_CHUNKS`). A pure function of `len` and
/// `min_chunk` — never of the thread count — so chunk boundaries, and
/// therefore chunked floating-point reductions, are identical for every
/// parallel configuration.
pub fn chunk_ranges(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let chunks = len.div_ceil(min_chunk).clamp(1, MAX_CHUNKS);
    let base = len / chunks;
    let rem = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    run_tasks(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    // run_tasks re-throws task panics, so reaching here means both
    // closures ran to completion and filled their slot.
    (
        ra.unwrap_or_else(|| unreachable!("join task a completed")),
        rb.unwrap_or_else(|| unreachable!("join task b completed")),
    )
}

/// Maps each chunk of `0..len` through `f`, returning per-chunk results
/// **in chunk order**. Fold the returned vector serially for a
/// thread-count-independent reduction.
pub fn map_chunks<R: Send>(
    len: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let ranges = chunk_ranges(len, min_chunk);
    if ranges.len() <= 1 || threads() <= 1 {
        return ranges.into_iter().map(&f).collect();
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .zip(ranges)
        .map(|(slot, range)| {
            Box::new(move || *slot = Some(f(range))) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("chunk task completed")))
        .collect()
}

/// Ordered-deterministic chunked sum: chunk partials (computed in
/// parallel) folded left-to-right on the caller. Bitwise identical for
/// every thread count ≥ 2.
pub fn sum_chunks(len: usize, min_chunk: usize, f: impl Fn(Range<usize>) -> f64 + Sync) -> f64 {
    map_chunks(len, min_chunk, f).into_iter().sum()
}

/// [`sum_chunks`] with a serial cutoff: below `serial_below` elements the
/// same chunk partials are computed inline on the caller (same chunk
/// boundaries, same fold order — bitwise identical to the parallel
/// result), skipping pool dispatch entirely. Use at sites where the
/// work per element is too small to amortize scheduling on small inputs.
pub fn sum_chunks_cutoff(
    len: usize,
    min_chunk: usize,
    serial_below: usize,
    f: impl Fn(Range<usize>) -> f64 + Sync,
) -> f64 {
    if len < serial_below {
        return chunk_ranges(len, min_chunk).into_iter().map(f).sum();
    }
    sum_chunks(len, min_chunk, f)
}

/// Maps each chunk of `data` through `f(chunk_start, chunk)` with
/// exclusive access to its chunk, returning per-chunk results **in chunk
/// order**. The mutable analogue of [`map_chunks`], for fused kernels
/// that both write an output slice and reduce a scalar in one pass.
pub fn map_chunks_mut<T: Send, R: Send>(
    data: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let ranges = chunk_ranges(data.len(), min_chunk);
    if ranges.len() <= 1 || threads() <= 1 {
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest = &mut *data;
        let mut consumed = 0;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.end - consumed);
            consumed = range.end;
            rest = tail;
            out.push(f(range.start, chunk));
        }
        return out;
    }
    let f = &f;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut consumed = 0;
    for (slot, range) in slots.iter_mut().zip(ranges) {
        let (chunk, tail) = rest.split_at_mut(range.end - consumed);
        consumed = range.end;
        rest = tail;
        let start = range.start;
        tasks.push(Box::new(move || *slot = Some(f(start, chunk))));
    }
    run_tasks(tasks);
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("chunk task completed")))
        .collect()
}

/// [`map_chunks_mut`] with a serial cutoff (see [`sum_chunks_cutoff`]):
/// below `serial_below` elements the same chunks run inline in chunk
/// order, bitwise identical to the dispatched result.
pub fn map_chunks_mut_cutoff<T: Send, R: Send>(
    data: &mut [T],
    min_chunk: usize,
    serial_below: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    if data.len() < serial_below {
        let ranges = chunk_ranges(data.len(), min_chunk);
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut consumed = 0;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.end - consumed);
            consumed = range.end;
            rest = tail;
            out.push(f(range.start, chunk));
        }
        return out;
    }
    map_chunks_mut(data, min_chunk, f)
}

/// Applies `f(chunk_start, chunk)` to disjoint mutable chunks of `data`
/// in parallel. `chunk_start` is the offset of `chunk` within `data`, so
/// `f` can index sibling read-only slices at matching positions.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let ranges = chunk_ranges(data.len(), min_chunk);
    if ranges.len() <= 1 || threads() <= 1 {
        for range in ranges {
            f(range.start, &mut data[range]);
        }
        return;
    }
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut consumed = 0;
    for range in ranges {
        let (chunk, tail) = rest.split_at_mut(range.end - consumed);
        consumed = range.end;
        rest = tail;
        let start = range.start;
        tasks.push(Box::new(move || f(start, chunk)));
    }
    run_tasks(tasks);
}

/// [`for_each_chunk_mut`] with a serial cutoff (see
/// [`sum_chunks_cutoff`]): below `serial_below` elements the same chunks
/// run inline in chunk order — elementwise kernels are bitwise identical
/// either way — without touching the pool.
pub fn for_each_chunk_mut_cutoff<T: Send>(
    data: &mut [T],
    min_chunk: usize,
    serial_below: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.len() < serial_below {
        for range in chunk_ranges(data.len(), min_chunk) {
            f(range.start, &mut data[range]);
        }
        return;
    }
    for_each_chunk_mut(data, min_chunk, f);
}

/// Like [`for_each_chunk_mut`], but advances two equal-length slices in
/// lockstep — one fused pass for updates like CG's `x += αp; r -= αAp`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn for_each_chunk_mut2<T: Send, U: Send>(
    a: &mut [T],
    b: &mut [U],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T], &mut [U]) + Sync,
) {
    assert_eq!(a.len(), b.len(), "paired chunk slices must match");
    let ranges = chunk_ranges(a.len(), min_chunk);
    if ranges.len() <= 1 || threads() <= 1 {
        for range in ranges {
            let start = range.start;
            f(start, &mut a[range.clone()], &mut b[range]);
        }
        return;
    }
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let (mut rest_a, mut rest_b) = (a, b);
    let mut consumed = 0;
    for range in ranges {
        let (chunk_a, tail_a) = rest_a.split_at_mut(range.end - consumed);
        let (chunk_b, tail_b) = rest_b.split_at_mut(range.end - consumed);
        consumed = range.end;
        rest_a = tail_a;
        rest_b = tail_b;
        let start = range.start;
        tasks.push(Box::new(move || f(start, chunk_a, chunk_b)));
    }
    run_tasks(tasks);
}

/// [`for_each_chunk_mut2`] with a serial cutoff (see
/// [`sum_chunks_cutoff`]): below `serial_below` elements the same chunks
/// run inline in chunk order, bitwise identical to the dispatched
/// result.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn for_each_chunk_mut2_cutoff<T: Send, U: Send>(
    a: &mut [T],
    b: &mut [U],
    min_chunk: usize,
    serial_below: usize,
    f: impl Fn(usize, &mut [T], &mut [U]) + Sync,
) {
    assert_eq!(a.len(), b.len(), "paired chunk slices must match");
    if a.len() < serial_below {
        for range in chunk_ranges(a.len(), min_chunk) {
            let start = range.start;
            f(start, &mut a[range.clone()], &mut b[range]);
        }
        return;
    }
    for_each_chunk_mut2(a, b, min_chunk, f);
}

/// Maps `f` over `0..n` with one task per index, returning results in
/// index order. For coarse-grained work (multi-start partitioning) where
/// each index is already a large unit.
pub fn map_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n <= 1 || threads() <= 1 {
        return (0..n).map(&f).collect();
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .enumerate()
        .map(|(i, slot)| Box::new(move || *slot = Some(f(i))) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    run_tasks(tasks);
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("indexed task completed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_ranges_tile_exactly() {
        for len in [0usize, 1, 7, 64, 1000, 4096, 100_000] {
            for min_chunk in [1usize, 16, 1024] {
                let ranges = chunk_ranges(len, min_chunk);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous at len={len}");
                    assert!(!r.is_empty(), "no empty chunks at len={len}");
                    next = r.end;
                }
                assert_eq!(next, len, "covers len={len}");
                assert!(ranges.len() <= MAX_CHUNKS);
            }
        }
    }

    #[test]
    fn chunking_ignores_thread_count() {
        let at_2 = with_threads(2, || chunk_ranges(10_000, 64));
        let at_7 = with_threads(7, || chunk_ranges(10_000, 64));
        let at_1 = with_threads(1, || chunk_ranges(10_000, 64));
        assert_eq!(at_2, at_7);
        assert_eq!(at_2, at_1);
    }

    #[test]
    fn sum_is_bitwise_stable_across_thread_counts() {
        // Values chosen to make reassociation visible if it happened.
        let data: Vec<f64> = (0..50_000)
            .map(|i| ((i as f64) * 0.731).sin() * 1e10 + 1e-7)
            .collect();
        let reference = with_threads(2, || {
            sum_chunks(data.len(), 256, |r| data[r].iter().sum::<f64>())
        });
        for n in [3, 4, 8] {
            let got = with_threads(n, || {
                sum_chunks(data.len(), 256, |r| data[r].iter().sum::<f64>())
            });
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={n}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_threads(4, || join(|| 6 * 7, || "ok".to_string()));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        let (a, b) = with_threads(1, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn tree_sum(depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (l, r) = join(|| tree_sum(depth - 1), || tree_sum(depth - 1));
            l + r
        }
        let got = with_threads(4, || tree_sum(8));
        assert_eq!(got, 1 << 8);
    }

    #[test]
    fn for_each_chunk_mut_sees_every_element_once() {
        let mut data = vec![0u64; 10_000];
        with_threads(4, || {
            for_each_chunk_mut(&mut data, 128, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as u64;
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn cutoff_variants_match_dispatched_results_bitwise() {
        let data: Vec<f64> = (0..9_000)
            .map(|i| ((i as f64) * 0.377).cos() * 1e8 + 3e-6)
            .collect();
        // Sum: serial-cutoff path vs dispatched path, same chunking.
        let dispatched = with_threads(4, || {
            sum_chunks(data.len(), 256, |r| data[r].iter().sum::<f64>())
        });
        let cut = with_threads(4, || {
            sum_chunks_cutoff(data.len(), 256, usize::MAX, |r| data[r].iter().sum::<f64>())
        });
        assert_eq!(cut.to_bits(), dispatched.to_bits());

        // for_each: both paths must visit every element exactly once with
        // the same chunk offsets.
        let fill = |serial_below: usize| {
            let mut out = vec![0u64; 5_000];
            with_threads(4, || {
                for_each_chunk_mut_cutoff(&mut out, 128, serial_below, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (start + i) as u64 * 3 + 1;
                    }
                });
            });
            out
        };
        assert_eq!(fill(usize::MAX), fill(0));

        let fill2 = |serial_below: usize| {
            let mut a = vec![0u64; 5_000];
            let mut b = vec![0u64; 5_000];
            with_threads(4, || {
                for_each_chunk_mut2_cutoff(&mut a, &mut b, 128, serial_below, |start, xs, ys| {
                    for (i, (x, y)) in xs.iter_mut().zip(ys.iter_mut()).enumerate() {
                        *x = (start + i) as u64;
                        *y = (start + i) as u64 * 2;
                    }
                });
            });
            (a, b)
        };
        assert_eq!(fill2(usize::MAX), fill2(0));
    }

    #[test]
    fn map_chunks_mut_writes_chunks_and_returns_partials_in_order() {
        let mut data = vec![0.0f64; 20_000];
        let partials = with_threads(4, || {
            map_chunks_mut(&mut data, 512, |start, chunk| {
                let mut sum = 0.0;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as f64;
                    sum += *v;
                }
                sum
            })
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as f64));
        let total: f64 = partials.into_iter().sum();
        assert_eq!(total, (0..20_000).map(|i| i as f64).sum::<f64>());

        // Serial cutoff path produces identical partials.
        let mut again = vec![0.0f64; 20_000];
        let cut = with_threads(4, || {
            map_chunks_mut_cutoff(&mut again, 512, usize::MAX, |start, chunk| {
                let mut sum = 0.0;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as f64;
                    sum += *v;
                }
                sum
            })
        });
        assert_eq!(again, data);
        assert_eq!(cut.into_iter().sum::<f64>().to_bits(), total.to_bits());
    }

    #[test]
    fn map_indexed_preserves_order() {
        let got = with_threads(4, || map_indexed(20, |i| i * i));
        assert_eq!(got, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_after_batch_drains() {
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                map_indexed(8, |i| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    i
                })
            })
        }));
        assert!(result.is_err(), "panic reached the caller");
        // The batch drained fully before rethrow (no task left running
        // against freed stack frames).
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn with_threads_scopes_nest_and_restore() {
        let outer = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn workers_inherit_scope_thread_count() {
        let seen = with_threads(5, || map_indexed(4, |_| threads()));
        assert!(seen.iter().all(|&n| n == 5), "workers saw {seen:?}");
    }
}
