//! Fair-share thread leases for concurrent placements.
//!
//! A single long-running process (the `tvp-serve` daemon) runs many
//! placements at once, all over the one process-global worker pool. If
//! every run simply scoped [`with_threads`](crate::with_threads) to the
//! full machine, concurrent jobs would thrash the pool and a burst of
//! cheap jobs could starve a big one. A [`ThreadBudget`] arbitrates
//! instead: each job takes a [`ThreadLease`] before it starts, the budget
//! grants it a fair share of the total (never less than 1), and the grant
//! is returned automatically when the lease drops.
//!
//! Grants are *advisory concurrency scopes*, not reserved OS threads: the
//! underlying pool is shared and cooperative (blocked callers help run
//! queued jobs), so a momentary oversubscription — e.g. an early lease
//! holding the whole budget when a second job arrives — degrades
//! throughput gracefully rather than deadlocking. The fairness rule is
//! deliberately simple and deterministic:
//!
//! ```text
//! grant = clamp(requested, 1 ..= max(1, total / active_leases))
//! ```
//!
//! so the first job alone gets the whole budget, two concurrent jobs get
//! half each, and every job always gets at least one thread. Determinism
//! of placement *results* never depends on the grant: thread counts only
//! scope execution (see the crate-level determinism contract).

use std::sync::{Arc, Mutex, PoisonError};

/// Shared accounting for a [`ThreadBudget`].
#[derive(Debug)]
struct BudgetState {
    /// Number of live leases (including their minimum-1 grants).
    active: usize,
    /// Sum of currently granted threads, for observability.
    leased: usize,
}

#[derive(Debug)]
struct BudgetInner {
    total: usize,
    state: Mutex<BudgetState>,
}

/// A pool-wide thread budget shared by concurrent placements.
///
/// Cloning is cheap and shares the same accounting. See the
/// [crate docs](crate) for the fairness rule.
#[derive(Clone, Debug)]
pub struct ThreadBudget {
    inner: Arc<BudgetInner>,
}

impl ThreadBudget {
    /// Creates a budget of `total` threads. `0` resolves to the hardware
    /// parallelism, and any value is clamped to at least 1.
    pub fn new(total: usize) -> Self {
        let total = if total == 0 {
            crate::available_threads()
        } else {
            total
        }
        .max(1);
        Self {
            inner: Arc::new(BudgetInner {
                total,
                state: Mutex::new(BudgetState {
                    active: 0,
                    leased: 0,
                }),
            }),
        }
    }

    /// The total thread count this budget arbitrates.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Number of live leases.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Sum of threads currently granted across live leases.
    pub fn leased(&self) -> usize {
        self.lock().leased
    }

    /// Takes a lease for one job. `requested == 0` asks for "as many as
    /// is fair"; any request is clamped to the fair share
    /// `max(1, total / active)` counting this lease itself, and never
    /// below 1. The grant is released when the returned lease drops.
    pub fn lease(&self, requested: usize) -> ThreadLease {
        let granted = {
            let mut st = self.lock();
            st.active += 1;
            let fair = (self.inner.total / st.active).max(1);
            let want = if requested == 0 {
                fair
            } else {
                requested.min(self.inner.total)
            };
            let granted = want.min(fair).max(1);
            st.leased += granted;
            granted
        };
        ThreadLease {
            budget: Arc::clone(&self.inner),
            granted,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BudgetState> {
        // A panic while holding this lock leaves only plain counters
        // behind; the accounting is still internally consistent enough to
        // keep granting (worst case a slightly stale fair share).
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A granted share of a [`ThreadBudget`], released on drop.
///
/// Pass it to `PlaceOptions::thread_lease` (in `tvp-core`) so the run's
/// `with_threads` scope uses the granted count, or call [`run`] to scope
/// arbitrary work.
///
/// [`run`]: ThreadLease::run
#[derive(Debug)]
pub struct ThreadLease {
    budget: Arc<BudgetInner>,
    granted: usize,
}

impl ThreadLease {
    /// The number of threads this lease was granted (always ≥ 1).
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Runs `f` inside a [`with_threads`](crate::with_threads) scope of
    /// the granted count.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        crate::with_threads(self.granted, f)
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        let mut st = self
            .budget
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.active = st.active.saturating_sub(1);
        st.leased = st.leased.saturating_sub(self.granted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sole_lease_gets_the_whole_budget() {
        let budget = ThreadBudget::new(8);
        let lease = budget.lease(0);
        assert_eq!(lease.granted(), 8);
        assert_eq!(budget.active(), 1);
        assert_eq!(budget.leased(), 8);
        drop(lease);
        assert_eq!(budget.active(), 0);
        assert_eq!(budget.leased(), 0);
    }

    #[test]
    fn concurrent_leases_split_fairly_and_never_starve() {
        let budget = ThreadBudget::new(8);
        let a = budget.lease(0);
        let b = budget.lease(0);
        let c = budget.lease(0);
        let d = budget.lease(0);
        assert_eq!(a.granted(), 8, "first job alone sees the full budget");
        assert_eq!(b.granted(), 4, "second job gets half");
        assert_eq!(c.granted(), 2, "third gets a third, rounded down");
        assert_eq!(d.granted(), 2);
        // A burst beyond the budget still grants at least one thread each.
        let e = budget.lease(0);
        let extra: Vec<_> = (0..8).map(|_| budget.lease(0)).collect();
        assert_eq!(e.granted(), 1);
        assert!(extra.iter().all(|l| l.granted() == 1));
    }

    #[test]
    fn requests_are_clamped_to_the_fair_share() {
        let budget = ThreadBudget::new(8);
        let a = budget.lease(2);
        assert_eq!(a.granted(), 2, "a modest request is honored as-is");
        let b = budget.lease(100);
        assert_eq!(b.granted(), 4, "an oversized request is capped at fair");
        drop(a);
        drop(b);
        let c = budget.lease(100);
        assert_eq!(c.granted(), 8, "after release the full budget returns");
    }

    #[test]
    fn zero_total_resolves_to_hardware() {
        let budget = ThreadBudget::new(0);
        assert!(budget.total() >= 1);
        assert_eq!(budget.lease(0).granted(), budget.total());
    }

    #[test]
    fn lease_run_scopes_the_thread_count() {
        let budget = ThreadBudget::new(3);
        let lease = budget.lease(0);
        let seen = lease.run(crate::threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn drop_order_is_irrelevant_to_accounting() {
        let budget = ThreadBudget::new(6);
        let a = budget.lease(0);
        let b = budget.lease(0);
        drop(a);
        assert_eq!(budget.active(), 1);
        assert_eq!(budget.leased(), b.granted());
        drop(b);
        assert_eq!(budget.leased(), 0);
    }
}
