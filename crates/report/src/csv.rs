//! Minimal CSV export for experiment series.

use std::fmt::Write as _;

/// A rectangular table of labelled numeric series.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(columns: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the column count.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} values but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to RFC-4180-style CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Parses a CSV produced by [`to_csv`](Self::to_csv) back into a table
    /// (for tests and tooling round trips).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty csv")?;
        let columns: Vec<String> = header.split(',').map(str::to_string).collect();
        let mut rows = Vec::new();
        for (no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<f64>, _> = line.split(',').map(str::parse::<f64>).collect();
            let row = row.map_err(|e| format!("line {}: {e}", no + 2))?;
            if row.len() != columns.len() {
                return Err(format!(
                    "line {}: {} values, expected {}",
                    no + 2,
                    row.len(),
                    columns.len()
                ));
            }
            rows.push(row);
        }
        Ok(Self { columns, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut t = Table::new(["alpha", "wl", "ilv"]);
        t.push(vec![1.0e-5, 2.5e-2, 1067.0]);
        t.push(vec![2.0e-5, 2.6e-2, 930.0]);
        let text = t.to_csv();
        assert!(text.starts_with("alpha,wl,ilv\n"));
        let back = Table::from_csv(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back, t_rounded(&t));
        fn t_rounded(t: &Table) -> Table {
            // Round-trip through the same formatter for exact equality.
            Table::from_csv(&t.to_csv()).unwrap()
        }
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_length_is_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = Table::from_csv("a,b\n1.0,x\n").unwrap_err();
        assert!(err.contains("line 2"));
        let err = Table::from_csv("a,b\n1.0\n").unwrap_err();
        assert!(err.contains("expected 2"));
        assert!(Table::from_csv("").is_err());
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_csv(), "x\n");
    }
}
