//! Placement quality distributions.

use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, PlacerConfig};
use tvp_netlist::Netlist;

/// A fixed-bin histogram over `[0, max]` with an explicit overflow bin.
#[derive(Clone, PartialEq, Debug)]
pub struct Histogram {
    /// Upper edge of the highest regular bin.
    pub max: f64,
    /// Counts per regular bin.
    pub bins: Vec<usize>,
    /// Samples above `max`.
    pub overflow: usize,
}

impl Histogram {
    /// Builds a histogram with `bins` regular bins over `[0, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max` is not positive.
    pub fn build(values: impl IntoIterator<Item = f64>, max: f64, bins: usize) -> Self {
        assert!(bins > 0 && max > 0.0);
        let mut histogram = Self {
            max,
            bins: vec![0; bins],
            overflow: 0,
        };
        for v in values {
            if v >= max {
                histogram.overflow += 1;
            } else {
                let idx = ((v / max) * bins as f64) as usize;
                histogram.bins[idx.min(bins - 1)] += 1;
            }
        }
        histogram
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.bins.iter().sum::<usize>() + self.overflow
    }

    /// The value below which `fraction` of the samples fall (linear within
    /// bins; `max` if the quantile lands in the overflow).
    pub fn quantile(&self, fraction: f64) -> f64 {
        let target = (self.total() as f64 * fraction).ceil() as usize;
        let mut seen = 0;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return (i + 1) as f64 / self.bins.len() as f64 * self.max;
            }
        }
        self.max
    }
}

/// Quality distributions of one placement.
#[derive(Clone, PartialEq, Debug)]
pub struct PlacementAnalysis {
    /// Net half-perimeter wirelengths (meters), 32 bins up to the chip
    /// half-perimeter.
    pub net_length: Histogram,
    /// Vias per net: `vias_per_net[k]` = number of nets spanning `k`
    /// layer boundaries.
    pub vias_per_net: Vec<usize>,
    /// Fraction of each layer's row capacity occupied by cells.
    pub layer_utilization: Vec<f64>,
    /// Total wirelength, meters.
    pub total_wirelength: f64,
    /// Total via count.
    pub total_ilv: f64,
}

impl PlacementAnalysis {
    /// Computes the distributions for a placement.
    pub fn compute(netlist: &Netlist, chip: &Chip, placement: &Placement) -> Self {
        // Geometry via the objective evaluator (single source of truth).
        let config = PlacerConfig::new(chip.num_layers);
        let model =
            ObjectiveModel::new(netlist, chip, &config).expect("chip-derived config is valid");
        let objective = IncrementalObjective::new(netlist, &model, placement.clone());

        let half_perimeter = chip.width + chip.depth;
        let lengths = (0..netlist.num_nets()).map(|e| {
            objective
                .net_geometry(tvp_netlist::NetId::new(e))
                .wirelength()
        });
        let net_length = Histogram::build(lengths, half_perimeter, 32);

        let mut vias_per_net = vec![0usize; chip.num_layers];
        for e in 0..netlist.num_nets() {
            let span = objective.net_geometry(tvp_netlist::NetId::new(e)).ilv as usize;
            vias_per_net[span.min(chip.num_layers - 1)] += 1;
        }

        let capacity = chip.num_rows as f64 * chip.row_height * chip.width;
        let mut layer_area = vec![0.0f64; chip.num_layers];
        for (cell, _, _, layer) in placement.iter() {
            if netlist.cell(cell).is_movable() {
                layer_area[(layer as usize).min(chip.num_layers - 1)] += netlist.cell(cell).area();
            }
        }
        let layer_utilization = layer_area.iter().map(|a| a / capacity).collect();

        Self {
            net_length,
            vias_per_net,
            layer_utilization,
            total_wirelength: objective.total_wirelength(),
            total_ilv: objective.total_ilv(),
        }
    }

    /// Renders a compact multi-line text report.
    pub fn to_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wirelength: total {:.4e} m, median net {:.3e} m, p95 {:.3e} m",
            self.total_wirelength,
            self.net_length.quantile(0.5),
            self.net_length.quantile(0.95),
        );
        let _ = writeln!(
            out,
            "vias: total {:.0}, spans {:?}",
            self.total_ilv, self.vias_per_net
        );
        let util: Vec<String> = self
            .layer_utilization
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect();
        let _ = writeln!(out, "layer utilization: [{}]", util.join(", "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_core::Placer;

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::build([0.1, 0.2, 0.3, 0.9, 5.0], 1.0, 10);
        assert_eq!(h.total(), 5);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.bins[1], 1); // 0.1
        assert_eq!(h.bins[9], 1); // 0.9
                                  // Median falls in the 0.2–0.3 region.
        let q = h.quantile(0.5);
        assert!((0.2..=0.4).contains(&q), "median {q}");
        assert_eq!(h.quantile(1.0), 1.0); // lands in overflow
    }

    #[test]
    fn analysis_of_a_real_placement() {
        let netlist = generate(&SynthConfig::named("a", 200, 1.0e-9)).unwrap();
        let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        let analysis = PlacementAnalysis::compute(&netlist, &result.chip, &result.placement);

        // Distributions agree with the totals the placer reported.
        assert!((analysis.total_wirelength - result.metrics.wirelength).abs() < 1e-12);
        assert!((analysis.total_ilv - result.metrics.ilv_count).abs() < 1e-12);
        // Every net appears exactly once in the via distribution.
        assert_eq!(
            analysis.vias_per_net.iter().sum::<usize>(),
            netlist.num_nets()
        );
        // Utilization below 100% everywhere (the placement is legal).
        for (l, &u) in analysis.layer_utilization.iter().enumerate() {
            assert!(u <= 1.0 + 1e-9, "layer {l} utilization {u}");
            assert!(u > 0.0, "layer {l} empty");
        }
        // All nets counted in the histogram.
        assert_eq!(analysis.net_length.total(), netlist.num_nets());
        let report = analysis.to_report();
        assert!(report.contains("wirelength"));
        assert!(report.contains("layer utilization"));
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::build([1.0], 1.0, 0);
    }
}
