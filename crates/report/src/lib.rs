//! Visualization and quality analysis for `tvp` placements.
//!
//! * [`svg`] renders per-layer placement maps as standalone SVG — cells
//!   colored by power density or by a thermal field — for eyeballing what
//!   the placer did.
//! * [`analysis`] computes the distributions behind placement quality:
//!   net-length histograms, vias per net, per-layer utilization.
//! * [`csv`] exports metric series so external tools can re-plot the
//!   paper's figures.
//!
//! # Example
//!
//! ```
//! use tvp_bookshelf::synth::{generate, SynthConfig};
//! use tvp_core::{Placer, PlacerConfig};
//! use tvp_report::{analysis::PlacementAnalysis, svg::SvgOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generate(&SynthConfig::named("r", 150, 0.75e-9))?;
//! let result = Placer::new(PlacerConfig::new(2)).place(&netlist)?;
//! let analysis = PlacementAnalysis::compute(&netlist, &result.chip, &result.placement);
//! assert_eq!(analysis.layer_utilization.len(), 2);
//! let image = tvp_report::svg::render_layers(
//!     &netlist, &result.chip, &result.placement, &SvgOptions::default());
//! assert!(image.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod compare;
pub mod csv;
pub mod svg;
