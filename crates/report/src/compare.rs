//! Series-shape comparison utilities.
//!
//! The reproduction's claims are about *shapes* — a series is monotone, two
//! series rank the same way, a knee falls in the same decade — rather than
//! absolute values. These helpers turn those statements into checkable
//! numbers; the integration tests and EXPERIMENTS.md analyses build on
//! them.

/// Direction of a monotonicity claim.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Values should not decrease along the series.
    Increasing,
    /// Values should not increase along the series.
    Decreasing,
}

/// Whether `series` is monotone in `direction`, tolerating reversals of up
/// to `tolerance` (relative to the series span). Placement experiments are
/// noisy; `tolerance` = 0.05 means "monotone up to 5%-of-span wiggles".
///
/// Returns `true` for series with fewer than two points.
pub fn is_monotone(series: &[f64], direction: Direction, tolerance: f64) -> bool {
    if series.len() < 2 {
        return true;
    }
    let span = series.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - series.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let slack = span * tolerance;
    series.windows(2).all(|w| match direction {
        Direction::Increasing => w[1] >= w[0] - slack,
        Direction::Decreasing => w[1] <= w[0] + slack,
    })
}

/// Spearman rank correlation between two equal-length series, in
/// `[-1, 1]`. +1 means identical orderings — the "who wins where" shape
/// agreement the reproduction targets.
///
/// # Panics
///
/// Panics if the series differ in length or have fewer than two points.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must be equal length");
    assert!(a.len() >= 2, "need at least two points");
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0; // a constant series carries no ordering information
    }
    num / (da * db).sqrt()
}

/// Average ranks (1-based), ties shared.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = shared;
        }
        i = j + 1;
    }
    out
}

/// Index of the knee of a decreasing convex-ish series: the point
/// farthest below the straight line joining the endpoints (the classic
/// "kneedle" construction). Returns `None` for series shorter than 3.
pub fn knee_index(series: &[f64]) -> Option<usize> {
    if series.len() < 3 {
        return None;
    }
    let n = (series.len() - 1) as f64;
    let (y0, y1) = (series[0], series[series.len() - 1]);
    let mut best = (0.0, None);
    for (i, &y) in series.iter().enumerate() {
        let line = y0 + (y1 - y0) * i as f64 / n;
        let below = line - y;
        if below > best.0 {
            best = (below, Some(i));
        }
    }
    best.1
}

/// Relative change `(to − from) / |from|`; the unit behind every
/// "% change vs baseline" column.
pub fn relative_change(from: f64, to: f64) -> f64 {
    (to - from) / from.abs().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_with_tolerance() {
        assert!(is_monotone(&[1.0, 2.0, 3.0], Direction::Increasing, 0.0));
        assert!(!is_monotone(&[1.0, 3.0, 2.0], Direction::Increasing, 0.0));
        // A 0.1-of-span wiggle passes at 20% tolerance.
        assert!(is_monotone(
            &[1.0, 3.0, 2.8, 4.0],
            Direction::Increasing,
            0.2
        ));
        assert!(is_monotone(
            &[5.0, 4.0, 4.0, 1.0],
            Direction::Decreasing,
            0.0
        ));
        assert!(is_monotone(&[], Direction::Increasing, 0.0));
        assert!(is_monotone(&[7.0], Direction::Decreasing, 0.0));
    }

    #[test]
    fn spearman_extremes() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[9.0, 5.0, 1.0]) + 1.0).abs() < 1e-12);
        // Constant series → no ordering signal.
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let r = spearman(&[1.0, 1.0, 2.0, 3.0], &[1.0, 1.0, 2.0, 3.0]);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn spearman_length_checked() {
        let _ = spearman(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn knee_of_an_l_curve() {
        // Steep drop then flat: knee at the corner.
        let series = [100.0, 40.0, 12.0, 8.0, 7.0, 6.5, 6.0];
        let k = knee_index(&series).unwrap();
        assert!((1..=3).contains(&k), "knee at {k}");
        assert_eq!(knee_index(&[1.0, 2.0]), None);
        // A straight line has no knee strictly below it.
        assert_eq!(knee_index(&[3.0, 2.0, 1.0]), None);
    }

    #[test]
    fn relative_change_signs() {
        assert!((relative_change(100.0, 81.0) + 0.19).abs() < 1e-12);
        assert!((relative_change(100.0, 110.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn real_tradeoff_series_shapes() {
        // The via-count series from a real α_ILV sweep must be decreasing
        // and anti-correlated with the wirelength series.
        use tvp_bookshelf::synth::{generate, SynthConfig};
        use tvp_core::{Placer, PlacerConfig};
        let netlist = generate(&SynthConfig::named("cmp", 250, 1.25e-9)).unwrap();
        let alphas = [5.0e-8, 2.0e-6, 8.0e-5, 1.0e-3];
        let mut wl = Vec::new();
        let mut ilv = Vec::new();
        for &a in &alphas {
            let r = Placer::new(PlacerConfig::new(4).with_alpha_ilv(a))
                .place(&netlist)
                .unwrap();
            wl.push(r.metrics.wirelength);
            ilv.push(r.metrics.ilv_count);
        }
        assert!(is_monotone(&ilv, Direction::Decreasing, 0.15), "{ilv:?}");
        assert!(is_monotone(&wl, Direction::Increasing, 0.25), "{wl:?}");
        assert!(spearman(&wl, &ilv) < 0.0, "WL and ILV must anti-correlate");
    }
}
