//! Standalone SVG rendering of placements and thermal fields.
//!
//! No dependencies: the renderer emits plain SVG 1.1 text. Layers are laid
//! out side by side, heat-sink layer first; each cell is a rectangle
//! colored by the selected [`ColorBy`] channel.

use tvp_core::{Chip, Placement};
use tvp_netlist::{CellId, Netlist};
use tvp_thermal::TemperatureField;

/// What the cell fill color encodes.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ColorBy {
    /// All cells one neutral color.
    #[default]
    Uniform,
    /// Color by the cell's pin count (connectivity hot spots).
    Connectivity,
}

/// Rendering options.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SvgOptions {
    /// Pixel width of one layer pane.
    pub pane_width: f64,
    /// Gap between layer panes, pixels.
    pub gap: f64,
    /// Fill color channel.
    pub color_by: ColorBy,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            pane_width: 320.0,
            gap: 16.0,
            color_by: ColorBy::Uniform,
        }
    }
}

/// Maps `t ∈ [0, 1]` to a blue→red heat color.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (255.0 * t) as u8;
    let b = (255.0 * (1.0 - t)) as u8;
    let g = (96.0 * (1.0 - (2.0 * t - 1.0).abs())) as u8;
    format!("rgb({r},{g},{b})")
}

/// Renders every layer of a placement side by side.
pub fn render_layers(
    netlist: &Netlist,
    chip: &Chip,
    placement: &Placement,
    options: &SvgOptions,
) -> String {
    let scale = options.pane_width / chip.width;
    let pane_h = chip.depth * scale;
    let total_w = chip.num_layers as f64 * (options.pane_width + options.gap) - options.gap;
    let total_h = pane_h + 24.0;

    let max_pins = netlist
        .cells()
        .iter()
        .enumerate()
        .map(|(i, _)| netlist.cell_pins(CellId::new(i)).len())
        .max()
        .unwrap_or(1)
        .max(1);

    let mut out = String::with_capacity(netlist.num_cells() * 64);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w:.0}\" height=\"{total_h:.0}\" \
         viewBox=\"0 0 {total_w:.1} {total_h:.1}\">\n"
    ));
    for layer in 0..chip.num_layers {
        let x0 = layer as f64 * (options.pane_width + options.gap);
        out.push_str(&format!(
            "<rect x=\"{x0:.1}\" y=\"0\" width=\"{:.1}\" height=\"{pane_h:.1}\" \
             fill=\"#f8f8f8\" stroke=\"#333\"/>\n",
            options.pane_width
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">layer {layer}\
             {}</text>\n",
            x0 + options.pane_width / 2.0,
            pane_h + 16.0,
            if layer == 0 { " (heat sink)" } else { "" }
        ));
    }
    for (cell, x, y, layer) in placement.iter() {
        let c = netlist.cell(cell);
        let pane_x =
            (layer as usize).min(chip.num_layers - 1) as f64 * (options.pane_width + options.gap);
        let w = (c.width() * scale).max(0.5);
        let h = (c.height() * scale).max(0.5);
        let px = pane_x + (x - c.width() / 2.0) * scale;
        // SVG y grows downward; flip so row 0 is at the bottom.
        let py = pane_h - (y + c.height() / 2.0) * scale;
        let fill = match options.color_by {
            ColorBy::Uniform => "#4477aa".to_string(),
            ColorBy::Connectivity => {
                let t = netlist.cell_pins(cell).len() as f64 / max_pins as f64;
                heat_color(t)
            }
        };
        out.push_str(&format!(
            "<rect x=\"{px:.2}\" y=\"{py:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{fill}\" fill-opacity=\"0.8\"/>\n"
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a temperature field as per-layer heat maps.
pub fn render_thermal(chip: &Chip, field: &TemperatureField, options: &SvgOptions) -> String {
    let (nx, ny, nz) = field.dims();
    let scale = options.pane_width / chip.width;
    let pane_h = chip.depth * scale;
    let total_w = nz as f64 * (options.pane_width + options.gap) - options.gap;
    let total_h = pane_h + 24.0;
    let t_min = field.ambient();
    let t_max = field.max_temperature().max(t_min + 1e-9);

    let cell_w = options.pane_width / nx as f64;
    let cell_h = pane_h / ny as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w:.0}\" height=\"{total_h:.0}\" \
         viewBox=\"0 0 {total_w:.1} {total_h:.1}\">\n"
    ));
    for layer in 0..nz {
        let x0 = layer as f64 * (options.pane_width + options.gap);
        for j in 0..ny {
            for i in 0..nx {
                let t = (field.at(i, j, layer) - t_min) / (t_max - t_min);
                let px = x0 + i as f64 * cell_w;
                let py = pane_h - (j + 1) as f64 * cell_h;
                out.push_str(&format!(
                    "<rect x=\"{px:.2}\" y=\"{py:.2}\" width=\"{cell_w:.2}\" \
                     height=\"{cell_h:.2}\" fill=\"{}\"/>\n",
                    heat_color(t)
                ));
            }
        }
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">layer \
             {layer}: avg {:.2} C</text>\n",
            x0 + options.pane_width / 2.0,
            pane_h + 16.0,
            field.layer_average(layer)
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_core::{Placer, PlacerConfig};
    use tvp_thermal::{PowerMap, ThermalSimulator};

    fn placed() -> (tvp_netlist::Netlist, tvp_core::PlacementResult) {
        let netlist = generate(&SynthConfig::named("s", 100, 5.0e-10)).unwrap();
        let result = Placer::new(PlacerConfig::new(2)).place(&netlist).unwrap();
        (netlist, result)
    }

    #[test]
    fn layer_svg_contains_every_cell() {
        let (netlist, result) = placed();
        let svg = render_layers(
            &netlist,
            &result.chip,
            &result.placement,
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Pane frames + one rect per cell.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, netlist.num_cells() + result.chip.num_layers);
        assert!(svg.contains("layer 0 (heat sink)"));
        // Balanced tags.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn connectivity_coloring_varies() {
        let (netlist, result) = placed();
        let options = SvgOptions {
            color_by: ColorBy::Connectivity,
            ..SvgOptions::default()
        };
        let svg = render_layers(&netlist, &result.chip, &result.placement, &options);
        // More than one distinct rgb() color must appear.
        let colors: std::collections::HashSet<&str> = svg
            .split("fill=\"")
            .skip(1)
            .map(|s| s.split('"').next().unwrap())
            .filter(|c| c.starts_with("rgb"))
            .collect();
        assert!(colors.len() > 1, "{} distinct colors", colors.len());
    }

    #[test]
    fn thermal_svg_renders_every_bin() {
        let (_netlist, result) = placed();
        let sim = ThermalSimulator::new(
            result.chip.stack,
            result.chip.width,
            result.chip.depth,
            4,
            4,
        )
        .unwrap();
        let mut power = PowerMap::new(4, 4, 2);
        power.add(1, 1, 1, 0.01);
        let field = sim.solve(&power).unwrap();
        let svg = render_thermal(&result.chip, &field, &SvgOptions::default());
        assert_eq!(svg.matches("<rect").count(), 4 * 4 * 2);
        assert!(svg.contains("avg"));
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), "rgb(0,0,255)");
        assert_eq!(heat_color(1.0), "rgb(255,0,0)");
        assert_eq!(heat_color(-5.0), heat_color(0.0));
        assert_eq!(heat_color(7.0), heat_color(1.0));
    }
}
