//! Renders a placed design and its temperature field to SVG files.
//!
//! ```sh
//! cargo run --release -p tvp-report --example visualize [cells] [outdir]
//! ```
//!
//! Produces `placement.svg` (per-layer cell maps, colored by connectivity)
//! and `thermal.svg` (per-layer heat maps) in the output directory.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Placer, PlacerConfig};
use tvp_report::svg::{render_layers, render_thermal, ColorBy, SvgOptions};
use tvp_thermal::{PowerMap, ThermalSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(1_000);
    let outdir = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| "target/visualize".to_string()),
    );
    std::fs::create_dir_all(&outdir)?;

    let netlist = generate(&SynthConfig::named("viz", cells, cells as f64 * 5.0e-12))?;
    let config = PlacerConfig::new(4).with_alpha_temp(1.0e-5);
    let result = Placer::new(config.clone()).place(&netlist)?;

    let options = SvgOptions {
        color_by: ColorBy::Connectivity,
        ..SvgOptions::default()
    };
    let placement_svg = render_layers(&netlist, &result.chip, &result.placement, &options);
    std::fs::write(outdir.join("placement.svg"), &placement_svg)?;

    // Rebuild the power map at the final placement and solve for the field.
    let model = ObjectiveModel::new(&netlist, &result.chip, &config)?;
    let objective = IncrementalObjective::new(&netlist, &model, result.placement.clone());
    let (nx, ny) = (24usize, 24usize);
    let sim = ThermalSimulator::new(
        result.chip.stack,
        result.chip.width,
        result.chip.depth,
        nx,
        ny,
    )?;
    let mut power = PowerMap::new(nx, ny, result.chip.num_layers);
    for (cell, x, y, layer) in result.placement.iter() {
        let p = model.power().cell_power(&netlist, cell, |e| {
            let g = objective.net_geometry(e);
            (g.wirelength(), g.ilv)
        });
        if p > 0.0 {
            power.deposit(
                x,
                y,
                layer as usize,
                p,
                result.chip.width,
                result.chip.depth,
            );
        }
    }
    let field = sim.solve(&power)?;
    let thermal_svg = render_thermal(&result.chip, &field, &SvgOptions::default());
    std::fs::write(outdir.join("thermal.svg"), &thermal_svg)?;

    println!(
        "wrote {} and {} ({} cells, T_avg = {:.2} C)",
        outdir.join("placement.svg").display(),
        outdir.join("thermal.svg").display(),
        cells,
        result.metrics.avg_temperature,
    );
    Ok(())
}
