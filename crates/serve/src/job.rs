//! Job specifications, persistent job records, and the retry/backoff
//! policy.
//!
//! Every job owns one directory under `<state_dir>/jobs/<id>/` holding
//! `job.json` (the record below, rewritten atomically on every state
//! transition) and, while the job is in flight, stage checkpoints under
//! `<state_dir>/checkpoints/<id>/`. Because the record and the
//! checkpoints survive a daemon crash, a restarted daemon rebuilds its
//! queue by scanning the store and re-enqueuing every non-terminal job;
//! the placement engine then resumes from the newest intact checkpoint
//! and reproduces the interrupted run bitwise.

use crate::json::{obj, s, Value};
use std::path::Path;
use std::time::Duration;
use tvp_core::PlacementResult;

/// What a client may submit: either a synthetic benchmark request
/// (`cells` + `seed`) or an inline Bookshelf design (`nodes` + `nets`
/// text, optional `wts`/`pl`).
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Job name, used for logging and the synthetic generator.
    pub name: String,
    /// Synthetic design size; `None` when an inline design is supplied.
    pub cells: Option<usize>,
    /// RNG seed for both the generator and the placer.
    pub seed: u64,
    /// Device layers in the 3D stack.
    pub layers: usize,
    /// Via-count weight override (paper's alpha_ILV).
    pub alpha_ilv: Option<f64>,
    /// Temperature weight override (paper's alpha_temp).
    pub alpha_temp: Option<f64>,
    /// Per-job deadline, mapped onto the engine's time budget; a job
    /// that exceeds it still returns its legal best-so-far placement,
    /// flagged `stopped_early`.
    pub deadline_seconds: Option<f64>,
    /// Per-job override of the daemon's retry cap.
    pub max_attempts: Option<u32>,
    /// Requested worker threads (a fair-share lease may grant fewer).
    pub threads: Option<usize>,
    /// Deterministic fault specs (`kind` or `kind:site`), validated at
    /// admission; injected only into the job's first-ever execution so
    /// that retries and crash recovery run clean.
    pub inject_faults: Vec<String>,
    /// Inline `.nodes` text for a client-supplied design.
    pub nodes: Option<String>,
    /// Inline `.nets` text for a client-supplied design.
    pub nets: Option<String>,
    /// Inline `.wts` text for a client-supplied design.
    pub wts: Option<String>,
    /// Inline `.pl` text for a client-supplied design.
    pub pl: Option<String>,
}

impl JobSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// Returns a `400`-worthy message for missing/contradictory design
    /// sources, out-of-range parameters, or unknown fault specs.
    pub fn from_json(body: &Value) -> Result<JobSpec, String> {
        let spec = JobSpec {
            name: body
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("job")
                .to_string(),
            cells: body
                .get("cells")
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or("`cells` must be a non-negative integer")
                })
                .transpose()?,
            seed: body.get("seed").and_then(Value::as_u64).unwrap_or(1),
            layers: body.get("layers").and_then(Value::as_u64).unwrap_or(2) as usize,
            alpha_ilv: body.get("alpha_ilv").and_then(Value::as_f64),
            alpha_temp: body.get("alpha_temp").and_then(Value::as_f64),
            deadline_seconds: body.get("deadline_seconds").and_then(Value::as_f64),
            max_attempts: body
                .get("max_attempts")
                .and_then(Value::as_u64)
                .map(|n| n as u32),
            threads: body
                .get("threads")
                .and_then(Value::as_u64)
                .map(|n| n as usize),
            inject_faults: body
                .get("inject_faults")
                .and_then(Value::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or("`inject_faults` entries must be strings")
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .transpose()?
                .unwrap_or_default(),
            nodes: body
                .get("nodes")
                .and_then(Value::as_str)
                .map(str::to_string),
            nets: body.get("nets").and_then(Value::as_str).map(str::to_string),
            wts: body.get("wts").and_then(Value::as_str).map(str::to_string),
            pl: body.get("pl").and_then(Value::as_str).map(str::to_string),
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        match (self.cells, &self.nodes, &self.nets) {
            (Some(n), None, None) if n >= 2 => {}
            (Some(_), None, None) => return Err("`cells` must be at least 2".to_string()),
            (None, Some(_), Some(_)) => {}
            (None, _, _) => {
                return Err(
                    "supply either `cells` (synthetic) or both `nodes` and `nets` (inline design)"
                        .to_string(),
                )
            }
            (Some(_), _, _) => {
                return Err("`cells` and inline `nodes`/`nets` are mutually exclusive".to_string())
            }
        }
        if !(2..=8).contains(&self.layers) {
            return Err("`layers` must be between 2 and 8".to_string());
        }
        if self
            .deadline_seconds
            .is_some_and(|d| d <= 0.0 || d.is_nan())
        {
            return Err("`deadline_seconds` must be positive".to_string());
        }
        if self.max_attempts.is_some_and(|a| a == 0) {
            return Err("`max_attempts` must be at least 1".to_string());
        }
        for spec in &self.inject_faults {
            tvp_core::faults::parse_spec(spec)?;
        }
        Ok(())
    }

    fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("name", s(self.name.clone())),
            ("seed", Value::Num(self.seed as f64)),
            ("layers", Value::Num(self.layers as f64)),
        ];
        if let Some(cells) = self.cells {
            pairs.push(("cells", Value::Num(cells as f64)));
        }
        if let Some(a) = self.alpha_ilv {
            pairs.push(("alpha_ilv", Value::Num(a)));
        }
        if let Some(a) = self.alpha_temp {
            pairs.push(("alpha_temp", Value::Num(a)));
        }
        if let Some(d) = self.deadline_seconds {
            pairs.push(("deadline_seconds", Value::Num(d)));
        }
        if let Some(a) = self.max_attempts {
            pairs.push(("max_attempts", Value::Num(f64::from(a))));
        }
        if let Some(t) = self.threads {
            pairs.push(("threads", Value::Num(t as f64)));
        }
        if !self.inject_faults.is_empty() {
            pairs.push((
                "inject_faults",
                Value::Arr(self.inject_faults.iter().cloned().map(s).collect()),
            ));
        }
        for (key, text) in [
            ("nodes", &self.nodes),
            ("nets", &self.nets),
            ("wts", &self.wts),
            ("pl", &self.pl),
        ] {
            if let Some(text) = text {
                pairs.push((key, s(text.clone())));
            }
        }
        obj(pairs)
    }
}

/// Lifecycle of a job. `Pending` and `Running` are transient; everything
/// else is terminal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Queued, or parked by a drain/crash awaiting re-execution.
    Pending,
    /// Claimed by a worker thread.
    Running,
    /// Finished cleanly.
    Done,
    /// Finished, but only by degrading (fault fallbacks fired).
    Degraded,
    /// Exhausted its retry budget on retryable errors, or hit a
    /// non-retryable one; the last error is preserved on the record.
    DeadLetter,
    /// Cancelled by the client.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::DeadLetter => "dead-letter",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<JobState> {
        [
            JobState::Pending,
            JobState::Running,
            JobState::Done,
            JobState::Degraded,
            JobState::DeadLetter,
            JobState::Cancelled,
        ]
        .into_iter()
        .find(|state| state.as_str() == name)
    }

    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Degraded | JobState::DeadLetter | JobState::Cancelled
        )
    }
}

/// Result metrics worth reporting over the API (a small projection of
/// [`tvp_core::PlacementMetrics`]).
#[derive(Clone, PartialEq, Debug)]
pub struct MetricsSummary {
    /// Total weighted wirelength, meters.
    pub wirelength: f64,
    /// Interlayer-via count.
    pub ilv_count: f64,
    /// Average on-chip temperature, Kelvin.
    pub avg_temperature: f64,
    /// Peak on-chip temperature, Kelvin.
    pub max_temperature: f64,
    /// Combined placement objective.
    pub objective: f64,
}

/// The durable record for one job: everything `job.json` stores.
#[derive(Clone, PartialEq, Debug)]
pub struct JobRecord {
    /// Unique job id (`job-<n>-<hash>`).
    pub id: String,
    /// The validated submission.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Executions started (first run plus retries).
    pub attempts: u32,
    /// Retries performed after retryable errors.
    pub retries: u32,
    /// Times a daemon restart re-adopted this job mid-flight.
    pub recoveries: u32,
    /// Last error message (dead-letter jobs keep theirs forever).
    pub error: Option<String>,
    /// Graceful degradations recorded by the engine, as `kind: detail`.
    pub degradations: Vec<String>,
    /// Whether the deadline/cancellation stopped the pipeline early.
    pub stopped_early: bool,
    /// FNV-1a digest of the final placement, as fixed-width hex.
    pub digest: Option<String>,
    /// Final quality metrics.
    pub metrics: Option<MetricsSummary>,
}

impl JobRecord {
    /// A fresh pending record for a newly admitted spec.
    pub fn new(id: String, spec: JobSpec) -> JobRecord {
        JobRecord {
            id,
            spec,
            state: JobState::Pending,
            attempts: 0,
            retries: 0,
            recoveries: 0,
            error: None,
            degradations: Vec::new(),
            stopped_early: false,
            digest: None,
            metrics: None,
        }
    }

    /// Fills the result fields from a finished placement and moves the
    /// state to `Done` or `Degraded`.
    pub fn absorb_result(&mut self, result: &PlacementResult) {
        self.degradations = result
            .degradations
            .iter()
            .map(|d| format!("{}: {}", d.kind(), d.detail()))
            .collect();
        self.stopped_early = result.stopped_early;
        self.digest = Some(format!("{:016x}", digest_placement(result)));
        self.metrics = Some(MetricsSummary {
            wirelength: result.metrics.wirelength,
            ilv_count: result.metrics.ilv_count,
            avg_temperature: result.metrics.avg_temperature,
            max_temperature: result.metrics.max_temperature,
            objective: result.metrics.objective,
        });
        self.error = None;
        self.state = if self.degradations.is_empty() {
            JobState::Done
        } else {
            JobState::Degraded
        };
    }

    /// Serializes the record to the `job.json` document.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("id", s(self.id.clone())),
            ("state", s(self.state.as_str())),
            ("attempts", Value::Num(f64::from(self.attempts))),
            ("retries", Value::Num(f64::from(self.retries))),
            ("recoveries", Value::Num(f64::from(self.recoveries))),
            ("stopped_early", Value::Bool(self.stopped_early)),
            ("spec", self.spec.to_json()),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error", s(error.clone())));
        }
        if !self.degradations.is_empty() {
            pairs.push((
                "degradations",
                Value::Arr(self.degradations.iter().cloned().map(s).collect()),
            ));
        }
        if let Some(digest) = &self.digest {
            pairs.push(("digest", s(digest.clone())));
        }
        if let Some(m) = &self.metrics {
            pairs.push((
                "metrics",
                obj(vec![
                    ("wirelength", Value::Num(m.wirelength)),
                    ("ilv_count", Value::Num(m.ilv_count)),
                    ("avg_temperature", Value::Num(m.avg_temperature)),
                    ("max_temperature", Value::Num(m.max_temperature)),
                    ("objective", Value::Num(m.objective)),
                ]),
            ));
        }
        obj(pairs)
    }

    /// Deserializes a `job.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message when required fields are missing or malformed;
    /// the daemon treats such records as corrupt and skips them.
    pub fn from_json(doc: &Value) -> Result<JobRecord, String> {
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .ok_or("job record missing `id`")?
            .to_string();
        let state = doc
            .get("state")
            .and_then(Value::as_str)
            .and_then(JobState::parse)
            .ok_or("job record missing or unknown `state`")?;
        let spec = JobSpec::from_json(doc.get("spec").ok_or("job record missing `spec`")?)?;
        let count = |key: &str| doc.get(key).and_then(Value::as_u64).unwrap_or(0) as u32;
        let metrics = doc.get("metrics").map(|m| {
            let f = |key: &str| m.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            MetricsSummary {
                wirelength: f("wirelength"),
                ilv_count: f("ilv_count"),
                avg_temperature: f("avg_temperature"),
                max_temperature: f("max_temperature"),
                objective: f("objective"),
            }
        });
        Ok(JobRecord {
            id,
            spec,
            state,
            attempts: count("attempts"),
            retries: count("retries"),
            recoveries: count("recoveries"),
            error: doc.get("error").and_then(Value::as_str).map(str::to_string),
            degradations: doc
                .get("degradations")
                .and_then(Value::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            stopped_early: doc
                .get("stopped_early")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            digest: doc
                .get("digest")
                .and_then(Value::as_str)
                .map(str::to_string),
            metrics,
        })
    }

    /// Atomically rewrites `<dir>/job.json` (tmp + fsync + rename), the
    /// same discipline the checkpoint store uses, so a crash can never
    /// leave a half-written record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn persist(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let tmp = dir.join("job.json.tmp");
        let target = dir.join("job.json");
        let text = self.to_json().to_json();
        std::fs::write(&tmp, text.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        if let Ok(file) = std::fs::File::open(&tmp) {
            let _ = file.sync_all();
        }
        std::fs::rename(&tmp, &target).map_err(|e| format!("rename into {}: {e}", target.display()))
    }

    /// Loads `<dir>/job.json`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is missing, unreadable, or not a
    /// valid record.
    pub fn load(dir: &Path) -> Result<JobRecord, String> {
        let path = dir.join("job.json");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        JobRecord::from_json(&Value::parse(&text)?)
    }
}

/// 64-bit FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of the final placement coordinates — bit-exact, so two runs
/// match iff their placements are bitwise identical. This is what the
/// crash-recovery test compares across a kill/restart.
pub fn digest_placement(result: &PlacementResult) -> u64 {
    let placement = &result.placement;
    let mut bytes = Vec::with_capacity(placement.len() * 18);
    for (_, x, y, layer) in placement.iter() {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&y.to_bits().to_le_bytes());
        bytes.extend_from_slice(&layer.to_le_bytes());
    }
    fnv1a(bytes)
}

/// Jittered exponential backoff before retry `attempt` (1-based): the
/// base delay doubles per attempt, capped, then scaled by a
/// deterministic jitter in `[0.75, 1.25)` derived from the job id — so
/// tests are reproducible while concurrent retries still decorrelate.
pub fn backoff_delay(job_id: &str, attempt: u32, base: Duration, cap: Duration) -> Duration {
    let exp = 2f64.powi(attempt.saturating_sub(1).min(16) as i32);
    let raw = base.as_secs_f64() * exp;
    let hash = fnv1a(job_id.bytes().chain(attempt.to_le_bytes()));
    let jitter = 0.75 + (hash % 1000) as f64 / 2000.0;
    Duration::from_secs_f64((raw * jitter).min(cap.as_secs_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_spec() -> Value {
        Value::parse(
            r#"{"name":"t","cells":200,"seed":7,"inject_faults":["slow-stage:coarse[0]"]}"#,
        )
        .unwrap()
    }

    #[test]
    fn record_round_trips_through_json() {
        let spec = JobSpec::from_json(&synth_spec()).unwrap();
        let mut record = JobRecord::new("job-1-abc".to_string(), spec);
        record.state = JobState::Degraded;
        record.attempts = 2;
        record.retries = 1;
        record.degradations = vec!["thermal-degraded: cg breakdown".to_string()];
        record.digest = Some("00deadbeef001234".to_string());
        record.metrics = Some(MetricsSummary {
            wirelength: 1.5,
            ilv_count: 42.0,
            avg_temperature: 310.0,
            max_temperature: 330.5,
            objective: 2.5,
        });
        let round = JobRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(round, record);
    }

    #[test]
    fn persist_and_load_survive_a_stray_tmp_file() {
        let dir = std::env::temp_dir().join(format!("tvp-serve-job-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let record = JobRecord::new(
            "job-9-f00".to_string(),
            JobSpec::from_json(&synth_spec()).unwrap(),
        );
        record.persist(&dir).unwrap();
        // A later crashed write leaves a tmp file behind; load ignores it.
        std::fs::write(dir.join("job.json.tmp"), b"{garbage").unwrap();
        assert_eq!(JobRecord::load(&dir).unwrap(), record);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_validation_rejects_bad_submissions() {
        for (body, needle) in [
            (r#"{}"#, "supply either"),
            (r#"{"cells":1}"#, "at least 2"),
            (
                r#"{"cells":100,"nodes":"x","nets":"y"}"#,
                "mutually exclusive",
            ),
            (r#"{"cells":100,"layers":1}"#, "layers"),
            (r#"{"cells":100,"deadline_seconds":0}"#, "deadline_seconds"),
            (r#"{"cells":100,"max_attempts":0}"#, "max_attempts"),
            (
                r#"{"cells":100,"inject_faults":["bogus"]}"#,
                "unknown fault kind",
            ),
        ] {
            let err = JobSpec::from_json(&Value::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn backoff_grows_jitters_deterministically_and_caps() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        let d1 = backoff_delay("job-1-a", 1, base, cap);
        let d2 = backoff_delay("job-1-a", 2, base, cap);
        let d9 = backoff_delay("job-1-a", 9, base, cap);
        assert!(d1 >= Duration::from_millis(75) && d1 < Duration::from_millis(125));
        assert!(d2 > d1);
        assert_eq!(d9, cap);
        // Same inputs, same delay; different job, different jitter.
        assert_eq!(backoff_delay("job-1-a", 1, base, cap), d1);
        assert_ne!(backoff_delay("job-2-b", 1, base, cap), d1);
    }

    #[test]
    fn terminal_states_are_exactly_the_non_queue_states() {
        for state in ["pending", "running"] {
            assert!(!JobState::parse(state).unwrap().is_terminal());
        }
        for state in ["done", "degraded", "dead-letter", "cancelled"] {
            assert!(JobState::parse(state).unwrap().is_terminal());
        }
    }
}
