//! A deliberately small HTTP/1.1 subset over `std::net`.
//!
//! The daemon speaks just enough HTTP for `curl` and the test client:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked encoding), capped header and body sizes, and
//! read timeouts so a stalled peer cannot pin an acceptor thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection socket timeout for both reads and writes.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed inbound request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component only; query strings are not used by this API.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request from the stream, enforcing head/body caps.
///
/// # Errors
///
/// Returns a message suitable for a `400 Bad Request` body on malformed
/// input, oversized heads, bodies above `max_body`, or socket errors.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_write_timeout: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut line = String::new();

    // Request line.
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?.to_string();
    let path = target
        .split_once('?')
        .map_or(target.as_str(), |(p, _)| p)
        .to_string();

    // Headers: we only care about Content-Length.
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "malformed Content-Length".to_string())?;
            }
        }
    }

    if content_length > max_body {
        return Err(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;

    Ok(Request { method, path, body })
}

/// One outbound response.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers as `(name, value)` pairs, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds an extra header, builder style.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes the response and flushes; the caller then drops the stream
/// (`Connection: close` semantics).
///
/// # Errors
///
/// Propagates socket write errors as strings; the connection is dead
/// either way, so callers typically just log these.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> Result<(), String> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// A reply as seen by [`request`].
#[derive(Debug)]
pub struct ClientReply {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientReply {
    /// Case-insensitive response-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking one-shot HTTP client used by the integration tests and the
/// CI smoke job; not part of the daemon's serving path.
///
/// # Errors
///
/// Returns a message on connection failures, timeouts, or a malformed
/// status line.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<ClientReply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("send request: {e}"))?;

    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read reply: {e}"))?;
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .ok_or("reply missing header terminator")?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty reply")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientReply {
        status,
        headers,
        body: payload.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.body, b"{\"x\":1}");
            let resp = Response::json(202, "{\"ok\":true}".to_string())
                .with_header("Retry-After", "2".to_string());
            write_response(&mut stream, &resp).unwrap();
        });

        let reply = request(&addr, "POST", "/jobs?ignored=1", "{\"x\":1}").unwrap();
        server.join().unwrap();
        assert_eq!(reply.status, 202);
        assert_eq!(reply.header("retry-after"), Some("2"));
        assert_eq!(reply.body, "{\"ok\":true}");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let err = read_request(&mut stream, 16).unwrap_err();
            assert!(err.contains("exceeds"), "{err}");
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }
}
