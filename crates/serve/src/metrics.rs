//! Daemon-wide counters for the `/metrics` endpoint.
//!
//! Plain atomics rendered in the Prometheus text exposition format —
//! enough for the CI smoke job and for eyeballing a running daemon with
//! `curl`, without pulling in a metrics crate.

use std::sync::atomic::{AtomicU64, Ordering};

/// All daemon counters. Monotonic except the two gauges.
#[derive(Default, Debug)]
pub struct Metrics {
    /// Jobs admitted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Submissions bounced with `429` by admission control.
    pub jobs_rejected: AtomicU64,
    /// Jobs that reached `done`.
    pub jobs_done: AtomicU64,
    /// Jobs that reached `degraded`.
    pub jobs_degraded: AtomicU64,
    /// Jobs that reached `dead-letter`.
    pub jobs_dead_letter: AtomicU64,
    /// Jobs cancelled by clients.
    pub jobs_cancelled: AtomicU64,
    /// Retry executions scheduled after retryable errors.
    pub retries: AtomicU64,
    /// In-flight jobs re-adopted during startup recovery.
    pub recoveries: AtomicU64,
    /// Graceful degradations recorded across all finished jobs.
    pub degradations: AtomicU64,
    /// Jobs stopped at their deadline with a best-so-far placement.
    pub deadline_stops: AtomicU64,
    /// Connections dropped because the concurrent-connection cap was hit.
    pub connections_dropped: AtomicU64,
    /// Gauge: jobs currently queued (pending).
    pub queue_depth: AtomicU64,
    /// Gauge: jobs currently executing.
    pub running: AtomicU64,
}

impl Metrics {
    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders every counter in Prometheus text format.
    pub fn render(&self) -> String {
        let pairs: [(&str, &AtomicU64); 13] = [
            ("tvp_jobs_submitted_total", &self.jobs_submitted),
            ("tvp_jobs_rejected_total", &self.jobs_rejected),
            ("tvp_jobs_done_total", &self.jobs_done),
            ("tvp_jobs_degraded_total", &self.jobs_degraded),
            ("tvp_jobs_dead_letter_total", &self.jobs_dead_letter),
            ("tvp_jobs_cancelled_total", &self.jobs_cancelled),
            ("tvp_retries_total", &self.retries),
            ("tvp_recoveries_total", &self.recoveries),
            ("tvp_degradations_total", &self.degradations),
            ("tvp_deadline_stops_total", &self.deadline_stops),
            ("tvp_connections_dropped_total", &self.connections_dropped),
            ("tvp_queue_depth", &self.queue_depth),
            ("tvp_jobs_running", &self.running),
        ];
        let mut out = String::with_capacity(pairs.len() * 40);
        for (name, counter) in pairs {
            out.push_str(name);
            out.push(' ');
            out.push_str(&counter.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_counter_with_its_value() {
        let m = Metrics::default();
        Metrics::bump(&m.jobs_submitted);
        Metrics::bump(&m.jobs_submitted);
        Metrics::bump(&m.retries);
        let text = m.render();
        assert!(text.contains("tvp_jobs_submitted_total 2\n"), "{text}");
        assert!(text.contains("tvp_retries_total 1\n"), "{text}");
        assert!(text.contains("tvp_queue_depth 0\n"), "{text}");
    }
}
