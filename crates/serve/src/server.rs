//! The daemon: acceptor, worker pool, job supervisor, and HTTP routing.
//!
//! Threading model: one acceptor thread, short-lived per-connection
//! threads (capped), and `workers` long-lived job threads that pull from
//! a bounded in-memory queue. All shared state sits behind one mutex;
//! placements themselves run outside it. Every job state transition is
//! persisted atomically before it becomes observable over the API, which
//! is what makes kill-at-any-instant recovery sound.

use crate::http::{self, Request, Response};
use crate::job::{backoff_delay, fnv1a, JobRecord, JobSpec, JobState};
use crate::json::{obj, s, Value};
use crate::metrics::Metrics;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tvp_core::checkpoint::GcPolicy;
use tvp_core::{CancelToken, PlaceOptions, PlacementResult, Placer, PlacerConfig};

/// Everything that shapes a daemon instance. `Default` gives sensible
/// production values; tests shrink the queue/backoff knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7433` (`:0` picks a free port).
    pub listen: String,
    /// Root of the durable store: `jobs/`, `checkpoints/`, and the
    /// `addr` discovery file live underneath.
    pub state_dir: PathBuf,
    /// Concurrent job executions.
    pub workers: usize,
    /// Admission-control bound on queued (pending) jobs.
    pub max_queue: usize,
    /// Total thread budget shared fairly across concurrent jobs
    /// (0 = all hardware threads).
    pub thread_budget: usize,
    /// Retry cap for jobs that do not set `max_attempts` themselves.
    pub default_max_attempts: u32,
    /// Base delay of the exponential retry backoff.
    pub retry_base: Duration,
    /// Upper bound on any single backoff delay.
    pub retry_cap: Duration,
    /// How long a graceful shutdown drains before parking what is left.
    pub drain_budget: Duration,
    /// Checkpoint-store hygiene policy applied at startup.
    pub gc_policy: GcPolicy,
    /// Concurrent HTTP connections before excess ones get `503`.
    pub max_connections: usize,
    /// Largest accepted request body (inline designs can be large).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("tvp-serve-state"),
            workers: 2,
            max_queue: 8,
            thread_budget: 0,
            default_max_attempts: 3,
            retry_base: Duration::from_millis(500),
            retry_cap: Duration::from_secs(30),
            drain_budget: Duration::from_secs(5),
            gc_policy: GcPolicy::default(),
            max_connections: 32,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

struct QueueEntry {
    id: String,
    /// Earliest start time; in the future for backoff re-enqueues.
    not_before: Instant,
}

#[derive(Default)]
struct DaemonState {
    jobs: HashMap<String, JobRecord>,
    queue: VecDeque<QueueEntry>,
    running: HashMap<String, CancelToken>,
    cancel_requested: HashSet<String>,
}

struct Inner {
    config: ServerConfig,
    metrics: Metrics,
    budget: tvp_parallel::ThreadBudget,
    state: Mutex<DaemonState>,
    /// Signals workers that the queue changed.
    work_ready: Condvar,
    /// Signals the shutdown drain that a job finished.
    drained: Condvar,
    /// Admission closed; drain in progress.
    shutting_down: AtomicBool,
    /// Drain budget expired: park instead of executing.
    parking: AtomicBool,
    /// Set by `POST /shutdown`; the host loop reacts to it.
    shutdown_requested: AtomicBool,
    next_job: AtomicU64,
    active_connections: AtomicUsize,
}

impl Inner {
    fn lock_state(&self) -> MutexGuard<'_, DaemonState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        self.config.state_dir.join("jobs").join(id)
    }

    fn checkpoint_dir(&self, id: &str) -> PathBuf {
        self.config.state_dir.join("checkpoints").join(id)
    }
}

/// A running daemon. Dropping it shuts down without waiting for a
/// drain; call [`shutdown`](Server::shutdown) for the graceful path.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers persisted jobs, garbage-collects the checkpoint
    /// store, and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns a message when the state directory cannot be created or
    /// the listen address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let jobs_root = config.state_dir.join("jobs");
        let checkpoints_root = config.state_dir.join("checkpoints");
        for dir in [&jobs_root, &checkpoints_root] {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }

        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("bind {}: {e}", config.listen))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        // Discovery file: lets `tvp serve` clients and the crash test
        // find a daemon that bound port 0.
        std::fs::write(config.state_dir.join("addr"), addr.to_string())
            .map_err(|e| format!("write addr file: {e}"))?;

        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            budget: tvp_parallel::ThreadBudget::new(config.thread_budget),
            config,
            metrics: Metrics::default(),
            state: Mutex::new(DaemonState::default()),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            parking: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            active_connections: AtomicUsize::new(0),
        });

        recover_persisted_jobs(&inner);
        run_startup_gc(&inner);

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("tvp-serve-accept".to_string())
                .spawn(move || accept_loop(&inner, &listener))
                .map_err(|e| format!("spawn acceptor: {e}"))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tvp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(|e| format!("spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked the daemon to exit via `POST /shutdown`
    /// (or a signal handler stored the request). The hosting loop polls
    /// this and then calls [`shutdown`](Server::shutdown).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Marks the daemon for shutdown, as `POST /shutdown` would.
    pub fn request_shutdown(&self) {
        self.inner.shutdown_requested.store(true, Ordering::Relaxed);
    }

    /// Graceful shutdown: stop admitting, drain the queue within the
    /// configured budget, then cancel-and-park whatever is still
    /// running (their records return to `pending`; their checkpoints
    /// survive, so the next start resumes them). Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        // Unblock `accept` so the acceptor can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }

        let deadline = Instant::now() + self.inner.config.drain_budget;
        {
            let mut st = self.inner.lock_state();
            self.inner.work_ready.notify_all();
            while !(st.queue.is_empty() && st.running.is_empty()) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .inner
                    .drained
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            if !(st.queue.is_empty() && st.running.is_empty()) {
                // Drain budget spent: park. Queued jobs are already
                // persisted as pending; running ones get cancelled and
                // their workers rewrite them to pending.
                self.inner.parking.store(true, Ordering::SeqCst);
                st.queue.clear();
                self.inner.metrics.queue_depth.store(0, Ordering::Relaxed);
                for token in st.running.values() {
                    token.cancel();
                }
            }
        }
        self.inner.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Fast path for tests and panics: skip the drain wait.
        self.inner.parking.store(true, Ordering::SeqCst);
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Startup: recovery + GC
// ---------------------------------------------------------------------

/// Rebuilds the in-memory job table from `jobs/*/job.json`. Jobs that
/// were `running` when the previous daemon died are re-adopted: their
/// `recoveries` counter bumps and they go back into the queue, where the
/// engine resumes them from the newest intact checkpoint.
fn recover_persisted_jobs(inner: &Arc<Inner>) {
    let jobs_root = inner.config.state_dir.join("jobs");
    let Ok(entries) = std::fs::read_dir(&jobs_root) else {
        return;
    };
    let mut max_counter = 0u64;
    let mut st = inner.lock_state();
    for entry in entries.flatten() {
        let dir = entry.path();
        let mut record = match JobRecord::load(&dir) {
            Ok(record) => record,
            // Corrupt or half-written records are skipped, never fatal.
            Err(_) => continue,
        };
        if let Some(counter) = record
            .id
            .split('-')
            .nth(1)
            .and_then(|n| n.parse::<u64>().ok())
        {
            max_counter = max_counter.max(counter);
        }
        match record.state {
            JobState::Running => {
                record.recoveries += 1;
                record.state = JobState::Pending;
                let _ = record.persist(&dir);
                Metrics::bump(&inner.metrics.recoveries);
            }
            JobState::Pending => {}
            _ => {
                st.jobs.insert(record.id.clone(), record);
                continue;
            }
        }
        st.queue.push_back(QueueEntry {
            id: record.id.clone(),
            not_before: Instant::now(),
        });
        inner.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        st.jobs.insert(record.id.clone(), record);
    }
    drop(st);
    inner.next_job.store(max_counter + 1, Ordering::Relaxed);
}

/// Applies the checkpoint-store GC policy, protecting every job the
/// daemon still intends to run or resume.
fn run_startup_gc(inner: &Arc<Inner>) {
    let live: HashSet<String> = {
        let st = inner.lock_state();
        st.jobs
            .iter()
            .filter(|(_, r)| !r.state.is_terminal())
            .map(|(id, _)| id.clone())
            .collect()
    };
    let root = inner.config.state_dir.join("checkpoints");
    let report =
        tvp_core::checkpoint::gc_store(&root, &inner.config.gc_policy, &|id| live.contains(id));
    if report.removed_anything() {
        eprintln!(
            "[tvp-serve] checkpoint GC: {} corrupt file(s), {} dir(s), {} byte(s) freed",
            report.corrupt_files_removed, report.dirs_removed, report.bytes_freed
        );
    }
}

// ---------------------------------------------------------------------
// Acceptor + HTTP routing
// ---------------------------------------------------------------------

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let active = inner.active_connections.fetch_add(1, Ordering::SeqCst);
        if active >= inner.config.max_connections {
            Metrics::bump(&inner.metrics.connections_dropped);
            let _ = http::write_response(
                &mut stream,
                &Response::text(503, "connection limit reached\n".to_string()),
            );
            inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("tvp-serve-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_inner, &mut stream);
                conn_inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            inner.active_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: &mut TcpStream) {
    let response = match http::read_request(stream, inner.config.max_body_bytes) {
        Ok(request) => route(inner, &request),
        Err(message) => Response::text(400, format!("{message}\n")),
    };
    let _ = http::write_response(stream, &response);
}

fn route(inner: &Arc<Inner>, request: &Request) -> Response {
    let segments: Vec<&str> = request
        .path
        .split('/')
        .filter(|segment| !segment.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(inner, &request.body),
        ("GET", ["jobs"]) => list_jobs(inner),
        ("GET", ["jobs", id]) => job_status(inner, id),
        ("GET", ["jobs", id, "placement"]) => job_placement(inner, id),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(inner, id),
        ("GET", ["healthz"]) => healthz(inner),
        ("GET", ["metrics"]) => Response::text(200, inner.metrics.render()),
        ("POST", ["shutdown"]) => {
            inner.shutdown_requested.store(true, Ordering::Relaxed);
            Response::json(
                202,
                obj(vec![("shutting_down", Value::Bool(true))]).to_json(),
            )
        }
        (method, _) if !matches!(method, "GET" | "POST") => {
            Response::text(405, "method not allowed\n".to_string())
        }
        _ => Response::text(404, "no such endpoint\n".to_string()),
    }
}

fn error_json(status: u16, message: &str) -> Response {
    Response::json(status, obj(vec![("error", s(message))]).to_json())
}

fn submit(inner: &Arc<Inner>, body: &[u8]) -> Response {
    if inner.shutting_down.load(Ordering::SeqCst) {
        return error_json(503, "daemon is shutting down");
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return error_json(400, "body is not UTF-8"),
    };
    let doc = match Value::parse(text) {
        Ok(doc) => doc,
        Err(message) => return error_json(400, &format!("malformed JSON: {message}")),
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(message) => return error_json(400, &message),
    };

    let mut st = inner.lock_state();
    // Admission control: a full queue answers 429 immediately instead of
    // accepting unbounded work. Retry re-enqueues bypass this bound.
    if st.queue.len() >= inner.config.max_queue {
        Metrics::bump(&inner.metrics.jobs_rejected);
        let retry_after = inner.config.retry_base.as_secs().max(1);
        return error_json(429, "queue full").with_header("Retry-After", retry_after.to_string());
    }

    let counter = inner.next_job.fetch_add(1, Ordering::Relaxed);
    let tag = fnv1a(
        spec.name
            .bytes()
            .chain(spec.seed.to_le_bytes())
            .chain(counter.to_le_bytes()),
    ) & 0xff_ffff;
    let id = format!("job-{counter}-{tag:06x}");
    let record = JobRecord::new(id.clone(), spec);
    if let Err(message) = record.persist(&inner.job_dir(&id)) {
        return error_json(500, &format!("cannot persist job: {message}"));
    }
    st.jobs.insert(id.clone(), record);
    st.queue.push_back(QueueEntry {
        id: id.clone(),
        not_before: Instant::now(),
    });
    drop(st);
    Metrics::bump(&inner.metrics.jobs_submitted);
    inner.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
    inner.work_ready.notify_one();
    Response::json(
        202,
        obj(vec![("id", s(id)), ("state", s("pending"))]).to_json(),
    )
}

fn list_jobs(inner: &Arc<Inner>) -> Response {
    let st = inner.lock_state();
    let mut ids: Vec<&String> = st.jobs.keys().collect();
    ids.sort();
    let jobs: Vec<Value> = ids
        .into_iter()
        .map(|id| {
            let record = &st.jobs[id];
            obj(vec![
                ("id", s(record.id.clone())),
                ("state", s(record.state.as_str())),
                ("attempts", Value::Num(f64::from(record.attempts))),
                ("retries", Value::Num(f64::from(record.retries))),
            ])
        })
        .collect();
    Response::json(200, Value::Arr(jobs).to_json())
}

fn job_status(inner: &Arc<Inner>, id: &str) -> Response {
    let st = inner.lock_state();
    match st.jobs.get(id) {
        Some(record) => Response::json(200, record.to_json().to_json()),
        None => error_json(404, "no such job"),
    }
}

fn job_placement(inner: &Arc<Inner>, id: &str) -> Response {
    let exists = inner.lock_state().jobs.contains_key(id);
    if !exists {
        return error_json(404, "no such job");
    }
    match std::fs::read_to_string(inner.job_dir(id).join("placement.pl")) {
        Ok(text) => Response::text(200, text),
        Err(_) => error_json(404, "placement not available (job not finished?)"),
    }
}

fn cancel_job(inner: &Arc<Inner>, id: &str) -> Response {
    let mut st = inner.lock_state();
    let Some(record) = st.jobs.get_mut(id) else {
        return error_json(404, "no such job");
    };
    match record.state {
        JobState::Pending => {
            record.state = JobState::Cancelled;
            let persisted = record.persist(&inner.job_dir(id));
            st.queue.retain(|entry| entry.id != id);
            drop(st);
            Metrics::bump(&inner.metrics.jobs_cancelled);
            decrement_gauge(&inner.metrics.queue_depth);
            match persisted {
                Ok(()) => Response::json(
                    202,
                    obj(vec![("id", s(id)), ("state", s("cancelled"))]).to_json(),
                ),
                Err(message) => error_json(500, &message),
            }
        }
        JobState::Running => {
            st.cancel_requested.insert(id.to_string());
            if let Some(token) = st.running.get(id) {
                token.cancel();
            }
            Response::json(
                202,
                obj(vec![("id", s(id)), ("state", s("cancelling"))]).to_json(),
            )
        }
        state => error_json(409, &format!("job already {}", state.as_str())),
    }
}

fn healthz(inner: &Arc<Inner>) -> Response {
    let (queued, running) = {
        let st = inner.lock_state();
        (st.queue.len(), st.running.len())
    };
    Response::json(
        200,
        obj(vec![
            ("status", s("ok")),
            ("queued", Value::Num(queued as f64)),
            ("running", Value::Num(running as f64)),
            (
                "shutting_down",
                Value::Bool(inner.shutting_down.load(Ordering::SeqCst)),
            ),
        ])
        .to_json(),
    )
}

fn decrement_gauge(gauge: &AtomicU64) {
    let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(id) = next_ready_job(inner) {
        run_job(inner, &id);
        inner.drained.notify_all();
    }
}

/// Blocks until a queue entry is ready (its backoff delay elapsed) or
/// the daemon is shutting down with nothing left to drain.
fn next_ready_job(inner: &Arc<Inner>) -> Option<String> {
    let mut st = inner.lock_state();
    loop {
        if inner.parking.load(Ordering::SeqCst) {
            return None;
        }
        let now = Instant::now();
        if let Some(position) = st.queue.iter().position(|entry| entry.not_before <= now) {
            let entry = st.queue.remove(position)?;
            decrement_gauge(&inner.metrics.queue_depth);
            return Some(entry.id);
        }
        if inner.shutting_down.load(Ordering::SeqCst) && st.queue.is_empty() {
            return None;
        }
        // Sleep until the earliest backoff matures, polling at 200 ms so
        // shutdown flags are never missed.
        let timeout = st
            .queue
            .iter()
            .map(|entry| entry.not_before.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(200))
            .min(Duration::from_millis(200));
        let (guard, _) = inner
            .work_ready
            .wait_timeout(st, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

/// Executes one attempt of one job, then applies the supervision
/// policy: success/degraded, cancelled, parked, retry, or dead-letter.
fn run_job(inner: &Arc<Inner>, id: &str) {
    let (spec, attempts, recoveries, token) = {
        let mut st = inner.lock_state();
        let Some(record) = st.jobs.get_mut(id) else {
            return;
        };
        if record.state != JobState::Pending {
            // Cancelled while queued (or a duplicate entry): nothing to do.
            return;
        }
        record.state = JobState::Running;
        record.attempts += 1;
        let _ = record.persist(&inner.job_dir(id));
        let token = CancelToken::new();
        let claimed = (
            record.spec.clone(),
            record.attempts,
            record.recoveries,
            token.clone(),
        );
        st.running.insert(id.to_string(), token);
        claimed
    };
    inner.metrics.running.fetch_add(1, Ordering::Relaxed);
    eprintln!(
        "[tvp-serve] {id}: attempt {attempts} starting ({} cells, seed {})",
        spec.cells
            .map_or_else(|| "inline".to_string(), |n| n.to_string()),
        spec.seed
    );

    let outcome = execute(inner, id, &spec, attempts, recoveries, &token);

    let mut st = inner.lock_state();
    st.running.remove(id);
    let was_cancelled = st.cancel_requested.remove(id);
    let Some(record) = st.jobs.get_mut(id) else {
        inner.metrics.running.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    match outcome {
        Ok((result, pl_text)) => {
            if was_cancelled {
                record.state = JobState::Cancelled;
                Metrics::bump(&inner.metrics.jobs_cancelled);
            } else if inner.parking.load(Ordering::SeqCst) && token.is_cancelled() {
                // Parked by shutdown: back to pending with checkpoints
                // intact; the next daemon start resumes this run.
                record.state = JobState::Pending;
                eprintln!("[tvp-serve] {id}: parked by shutdown after attempt {attempts}");
            } else {
                record.absorb_result(&result);
                let _ = std::fs::write(inner.job_dir(id).join("placement.pl"), pl_text);
                // The run is over; its stage checkpoints have no future.
                let _ = std::fs::remove_dir_all(inner.checkpoint_dir(id));
                if result.stopped_early {
                    Metrics::bump(&inner.metrics.deadline_stops);
                }
                inner
                    .metrics
                    .degradations
                    .fetch_add(record.degradations.len() as u64, Ordering::Relaxed);
                Metrics::bump(if record.state == JobState::Degraded {
                    &inner.metrics.jobs_degraded
                } else {
                    &inner.metrics.jobs_done
                });
                eprintln!(
                    "[tvp-serve] {id}: {} after {attempts} attempt(s), {} retry(ies), {} degradation(s){}",
                    record.state.as_str(),
                    record.retries,
                    record.degradations.len(),
                    if result.stopped_early { ", stopped at deadline" } else { "" },
                );
            }
            let _ = record.persist(&inner.job_dir(id));
        }
        Err((message, retryable)) => {
            record.error = Some(message.clone());
            let max_attempts = spec
                .max_attempts
                .unwrap_or(inner.config.default_max_attempts);
            let mut requeue_after = None;
            if was_cancelled {
                record.state = JobState::Cancelled;
                Metrics::bump(&inner.metrics.jobs_cancelled);
            } else if retryable && record.attempts < max_attempts {
                record.retries += 1;
                record.state = JobState::Pending;
                let delay = backoff_delay(
                    id,
                    record.retries,
                    inner.config.retry_base,
                    inner.config.retry_cap,
                );
                requeue_after = Some(delay);
                Metrics::bump(&inner.metrics.retries);
                eprintln!(
                    "[tvp-serve] {id}: retryable failure (attempt {attempts}), retrying in {delay:?}: {message}"
                );
            } else {
                record.state = JobState::DeadLetter;
                Metrics::bump(&inner.metrics.jobs_dead_letter);
                eprintln!("[tvp-serve] {id}: dead-letter after {attempts} attempt(s): {message}");
            }
            let _ = record.persist(&inner.job_dir(id));
            if let Some(delay) = requeue_after {
                // Retry re-enqueues bypass admission control: the job
                // already holds a queue slot conceptually.
                st.queue.push_back(QueueEntry {
                    id: id.to_string(),
                    not_before: Instant::now() + delay,
                });
                inner.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                inner.work_ready.notify_one();
            }
        }
    }
    inner.metrics.running.fetch_sub(1, Ordering::Relaxed);
}

/// One placement attempt: build the design, wire up options (deadline,
/// checkpoints, fault plan, fair-share thread lease), run the engine.
///
/// Errors carry `(message, retryable)`; setup failures (bad Bookshelf
/// text, generator errors) are permanent, engine errors defer to
/// [`tvp_core::PlaceError::is_retryable`].
fn execute(
    inner: &Arc<Inner>,
    id: &str,
    spec: &JobSpec,
    attempts: u32,
    recoveries: u32,
    token: &CancelToken,
) -> Result<(PlacementResult, String), (String, bool)> {
    let (netlist, fixed) = build_design(spec).map_err(|message| (message, false))?;

    let mut config = PlacerConfig::new(spec.layers).with_seed(spec.seed);
    if let Some(alpha) = spec.alpha_ilv {
        config = config.with_alpha_ilv(alpha);
    }
    if let Some(alpha) = spec.alpha_temp {
        config = config.with_alpha_temp(alpha);
    }

    // Faults are injected only into the job's very first execution:
    // retries and crash recoveries must run clean so `fault -> retry ->
    // success` and kill/restart resume both converge.
    let faults = if attempts == 1 && recoveries == 0 && !spec.inject_faults.is_empty() {
        let mut plan = tvp_core::FaultPlan::new(spec.seed);
        for fault in &spec.inject_faults {
            let (kind, site) = tvp_core::faults::parse_spec(fault).map_err(|e| (e, false))?;
            plan = plan.inject(kind, site);
        }
        Some(plan)
    } else {
        None
    };

    let requested_threads = spec.threads.unwrap_or_else(|| inner.budget.total());
    let lease = inner.budget.lease(requested_threads);
    let options = PlaceOptions {
        observer: None,
        cancel: Some(token.clone()),
        time_budget: spec.deadline_seconds.map(Duration::from_secs_f64),
        checkpoint_dir: Some(inner.checkpoint_dir(id)),
        faults,
        thread_lease: Some(lease),
    };

    let result = Placer::new(config)
        .place_with_options(&netlist, &fixed, options)
        .map_err(|error| (error.to_string(), error.is_retryable()))?;
    let pl_text = render_placement(&netlist, &result);
    Ok((result, pl_text))
}

/// Fixed terminal positions as the placer takes them.
type FixedPositions = Vec<(tvp_netlist::CellId, f64, f64, u16)>;

/// Materializes the netlist (synthetic or inline Bookshelf) plus fixed
/// terminal positions.
fn build_design(spec: &JobSpec) -> Result<(tvp_netlist::Netlist, FixedPositions), String> {
    if let Some(cells) = spec.cells {
        // ~5 um^2 per cell matches the synthetic suite's density.
        let area = cells as f64 * 5e-12;
        let netlist = tvp_bookshelf::synth::generate(
            &tvp_bookshelf::synth::SynthConfig::named(spec.name.clone(), cells, area)
                .with_seed(spec.seed),
        )
        .map_err(|e| format!("synthetic design: {e}"))?;
        return Ok((netlist, Vec::new()));
    }
    let (Some(nodes_text), Some(nets_text)) = (&spec.nodes, &spec.nets) else {
        return Err("inline design requires both `nodes` and `nets`".to_string());
    };
    let nodes = tvp_bookshelf::parse_nodes(nodes_text).map_err(|e| format!(".nodes: {e}"))?;
    let nets = tvp_bookshelf::parse_nets(nets_text).map_err(|e| format!(".nets: {e}"))?;
    let wts = spec
        .wts
        .as_deref()
        .map(tvp_bookshelf::parse_wts)
        .transpose()
        .map_err(|e| format!(".wts: {e}"))?;
    let pl = spec
        .pl
        .as_deref()
        .map(tvp_bookshelf::parse_pl)
        .transpose()
        .map_err(|e| format!(".pl: {e}"))?;
    let design = tvp_bookshelf::Design::assemble(
        spec.name.clone(),
        &nodes,
        &nets,
        wts.as_ref(),
        pl.as_ref(),
        None,
        tvp_bookshelf::DesignBuilderOptions::default(),
    )
    .map_err(|e| format!("assemble design: {e}"))?;
    let fixed = design
        .netlist
        .iter_cells()
        .filter(|(_, cell)| !cell.is_movable())
        .filter_map(|(id, _)| {
            design
                .positions
                .get(id.index())
                .map(|&(x, y, layer)| (id, x, y, layer as u16))
        })
        .collect();
    Ok((design.netlist, fixed))
}

/// Renders the final placement as a 3D Bookshelf `.pl` document
/// (coordinates in meters), served by `GET /jobs/{id}/placement`.
fn render_placement(netlist: &tvp_netlist::Netlist, result: &PlacementResult) -> String {
    let records = netlist
        .iter_cells()
        .map(|(id, cell)| {
            let (x, y, layer) = result.placement.position(id);
            tvp_bookshelf::PlRecord {
                name: cell.name().to_string(),
                x,
                y,
                layer: Some(u32::from(layer)),
                orient: "N".to_string(),
                fixed: !cell.is_movable(),
            }
        })
        .collect();
    tvp_bookshelf::write_pl(&tvp_bookshelf::PlFile { records })
}
