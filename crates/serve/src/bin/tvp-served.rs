//! `tvp-served`: the standalone daemon binary.
//!
//! ```text
//! tvp-served --listen 127.0.0.1:7433 --state-dir /var/lib/tvp \
//!            --workers 2 --max-queue 8
//! ```
//!
//! Runs until `POST /shutdown` or SIGTERM/SIGINT, then drains
//! gracefully (checkpoint-and-park after the drain budget). The bound
//! address is written to `<state-dir>/addr` so clients can discover a
//! daemon started with `--listen 127.0.0.1:0`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tvp_serve::{Server, ServerConfig};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // Raw libc `signal(2)`: std exposes no handler registration and the
    // build is dependency-free. Storing a flag is all the handler does,
    // which keeps it trivially async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

const USAGE: &str = "\
tvp-served: fault-tolerant placement daemon

USAGE:
    tvp-served [OPTIONS]

OPTIONS:
    --listen ADDR          Bind address (default 127.0.0.1:0)
    --state-dir DIR        Durable job/checkpoint store (default ./tvp-serve-state)
    --workers N            Concurrent job executions (default 2)
    --max-queue N          Admission-control queue bound (default 8)
    --thread-budget N      Threads shared across jobs, 0 = hardware (default 0)
    --max-attempts N       Default retry cap per job (default 3)
    --retry-base-ms N      Backoff base delay in ms (default 500)
    --drain-secs N         Graceful-shutdown drain budget (default 5)
    --help                 Show this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--listen" => config.listen = value("--listen")?,
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")?),
            "--workers" => {
                config.workers = parse_num(&value("--workers")?, "--workers")?;
            }
            "--max-queue" => {
                config.max_queue = parse_num(&value("--max-queue")?, "--max-queue")?;
            }
            "--thread-budget" => {
                config.thread_budget = parse_num(&value("--thread-budget")?, "--thread-budget")?;
            }
            "--max-attempts" => {
                config.default_max_attempts =
                    parse_num::<u32>(&value("--max-attempts")?, "--max-attempts")?.max(1);
            }
            "--retry-base-ms" => {
                config.retry_base = Duration::from_millis(parse_num(
                    &value("--retry-base-ms")?,
                    "--retry-base-ms",
                )?);
            }
            "--drain-secs" => {
                config.drain_budget =
                    Duration::from_secs(parse_num(&value("--drain-secs")?, "--drain-secs")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse::<T>()
        .map_err(|_| format!("{flag}: `{text}` is not a valid number"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if message == USAGE { 0 } else { 2 });
        }
    };

    install_signal_handlers();
    let mut server = match Server::start(config) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("tvp-served: {message}");
            std::process::exit(1);
        }
    };
    eprintln!("[tvp-serve] listening on http://{}", server.addr());

    while !server.shutdown_requested() && !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("[tvp-serve] shutting down (draining)...");
    server.shutdown();
    eprintln!("[tvp-serve] bye");
}
