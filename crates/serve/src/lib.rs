//! `tvp-serve`: a fault-tolerant placement daemon.
//!
//! The daemon wraps the [`tvp_core`] placer in a long-running job
//! service with the robustness features a shared queue needs:
//!
//! - **HTTP/1.1 + JSON API** over [`std::net`] (no external deps):
//!   submit a design, poll status, fetch the placement, cancel, plus
//!   `/healthz` and `/metrics`.
//! - **Admission control**: a bounded queue; a full queue answers `429`
//!   with `Retry-After` instead of growing without bound.
//! - **Deadlines**: per-job `deadline_seconds` maps onto the engine's
//!   time budget, so an overrunning job returns its legal best-so-far
//!   placement instead of being killed.
//! - **Retry with backoff**: retryable typed errors
//!   ([`tvp_core::PlaceError::is_retryable`]) re-enqueue with jittered
//!   exponential backoff up to a capped attempt count; exhaustion parks
//!   the job in a terminal `dead-letter` state with the error preserved.
//! - **Crash recovery**: every state transition rewrites the job record
//!   atomically, and stage checkpoints live under the daemon's state
//!   directory. A restarted daemon re-adopts in-flight jobs and resumes
//!   them bitwise-identically from the newest intact checkpoint.
//! - **Graceful shutdown**: stop admitting, drain within a budget, then
//!   checkpoint-and-park whatever is still running.
//! - **Fair pool sharing**: concurrent placements draw fair-share
//!   thread leases from one [`tvp_parallel::ThreadBudget`] instead of
//!   fighting over the global pool.
//!
//! The library is used by the `tvp-served` binary (and `tvp serve`,
//! which execs it in-process) and driven directly by the integration
//! tests.

pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod server;

pub use server::{Server, ServerConfig};
