//! A minimal JSON value: hand-written recursive-descent parser plus a
//! writer, shared by the job API and the on-disk job records.
//!
//! The build environment has no crates.io access, so this plays the role
//! serde_json would for the daemon's small payloads. Objects preserve
//! insertion order (they are vectors of pairs); duplicate keys keep the
//! first occurrence on lookup. Numbers are `f64` throughout — the API
//! never carries integers that lose precision at 2^53.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input, unbalanced nesting deeper than 64 levels, or trailing
    /// content.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence). `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON. Non-finite numbers render
    /// as `null` (JSON has no NaN/Inf).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor for string values.
pub fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half when the
                            // high half announces one.
                            let code = if (0xd800..0xdc00).contains(&hex) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.err("malformed \\u escape"))?;
                                self.pos += 4;
                                0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if let Ok(chunk) = std::str::from_utf8(&rest[..len.min(rest.len())]) {
                        out.push_str(chunk);
                    }
                    self.pos += len.min(rest.len());
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes_a_nested_document() {
        let text = r#"{"name":"t1","cells":1000,"alpha":1.5e-5,"tags":["a","b"],"deep":{"ok":true,"none":null}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("t1"));
        assert_eq!(v.get("cells").and_then(Value::as_u64), Some(1000));
        assert_eq!(v.get("alpha").and_then(Value::as_f64), Some(1.5e-5));
        assert_eq!(
            v.get("tags").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("ok"))
                .and_then(Value::as_bool),
            Some(true)
        );
        // Round trip: parse(to_json(v)) == v.
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}é✓".to_string());
        let round = Value::parse(&v.to_json()).unwrap();
        assert_eq!(round, v);
        // Unicode escapes, including a surrogate pair, decode correctly.
        let v = Value::parse(r#""é✓😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é✓😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1}x",
            "nan",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting_without_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(1.0).to_json(), "1");
        assert_eq!(Value::Num(1.25).to_json(), "1.25");
    }
}
