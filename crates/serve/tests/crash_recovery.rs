//! Kill-and-restart recovery: a daemon killed mid-placement (SIGKILL,
//! no chance to clean up) must, on restart over the same state
//! directory, re-adopt the in-flight job, resume it from its newest
//! intact checkpoint, and finish with a placement bitwise identical to
//! an uninterrupted run. Also covers the softer variant: graceful
//! shutdown parking a running job, resumed by an in-process restart.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tvp_serve::http::request;
use tvp_serve::json::Value;
use tvp_serve::{Server, ServerConfig};

fn temp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp-serve-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned daemon process, killed on drop so a failing test never
/// leaks one.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &Path) -> Daemon {
        // A previous (killed) daemon may have left its own addr file;
        // remove it so we only ever read the new daemon's address.
        let _ = std::fs::remove_file(state_dir.join("addr"));
        let child = Command::new(env!("CARGO_BIN_EXE_tvp-served"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--state-dir",
                &state_dir.display().to_string(),
                "--workers",
                "1",
                "--retry-base-ms",
                "10",
                "--drain-secs",
                "0",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn tvp-served");
        // The daemon writes its bound address once the listener is up.
        let addr_file = state_dir.join("addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote {}",
                addr_file.display()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        Daemon { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The job under test: two slow-stage faults stretch the pipeline by
/// ~500 ms after the first checkpoints land, giving the kill a wide,
/// deterministic window — without perturbing a single placement bit.
const SPEC: &str = r#"{"name":"crashy","cells":400,"seed":11,
    "inject_faults":["slow-stage:coarse[0]","slow-stage:detail[0]"]}"#;

fn submit(addr: &str) -> String {
    let reply = request(addr, "POST", "/jobs", SPEC).expect("submit");
    assert_eq!(reply.status, 202, "{}", reply.body);
    Value::parse(&reply.body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn wait_terminal(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "GET", &format!("/jobs/{id}"), "").expect("status");
        let doc = Value::parse(&reply.body).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap();
        if !matches!(state, "pending" | "running") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}`");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigkill_mid_placement_recovers_bitwise_identically_on_restart() {
    let state_dir = temp_state("sigkill");
    let mut daemon = Daemon::spawn(&state_dir);
    let id = submit(&daemon.addr);

    // Wait for the first stage checkpoint to hit the disk, then kill
    // the daemon while the injected slow stages hold the job mid-run.
    let manifest = state_dir.join("checkpoints").join(&id).join("manifest.tvp");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !manifest.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.kill();

    // The killed daemon left the record in `running`; a restart over the
    // same store re-adopts and resumes it.
    let revived = Daemon::spawn(&state_dir);
    let doc = wait_terminal(&revived.addr, &id);
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        doc.to_json()
    );
    assert_eq!(
        doc.get("recoveries").unwrap().as_u64(),
        Some(1),
        "{}",
        doc.to_json()
    );
    let recovered_digest = doc.get("digest").unwrap().as_str().unwrap().to_string();

    // Reference: the identical spec, run uninterrupted on the same
    // daemon. Bitwise-identical placement means identical digest.
    let reference = submit(&revived.addr);
    let reference_doc = wait_terminal(&revived.addr, &reference);
    assert_eq!(reference_doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(
        reference_doc.get("digest").unwrap().as_str().unwrap(),
        recovered_digest,
        "recovered placement diverged from the uninterrupted run"
    );

    drop(revived);
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn graceful_shutdown_parks_running_jobs_and_a_restart_finishes_them() {
    let state_dir = temp_state("park");
    let config = ServerConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        drain_budget: Duration::ZERO,
        ..ServerConfig::default()
    };
    let mut server = Server::start(config.clone()).expect("daemon starts");
    let addr = server.addr().to_string();
    let id = submit(&addr);

    // Let the job actually start, then shut down with a zero drain
    // budget: the job is cancelled at a stage boundary and parked.
    let manifest = state_dir.join("checkpoints").join(&id).join("manifest.tvp");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !manifest.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
    drop(server);

    // Parked, not lost: the durable record is pending again and the
    // checkpoints survived the shutdown.
    let record =
        std::fs::read_to_string(state_dir.join("jobs").join(&id).join("job.json")).unwrap();
    assert!(record.contains("\"state\":\"pending\""), "{record}");
    assert!(manifest.exists());

    let mut server = Server::start(config).expect("daemon restarts");
    let addr = server.addr().to_string();
    let doc = wait_terminal(&addr, &id);
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        doc.to_json()
    );
    assert!(doc.get("digest").unwrap().as_str().unwrap().len() == 16);

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}
