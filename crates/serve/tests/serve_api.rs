//! End-to-end API tests: admission control under a burst, retry and
//! dead-letter supervision, deadlines, cancellation, and the
//! observability endpoints — all against an in-process daemon.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use tvp_serve::http::{request, ClientReply};
use tvp_serve::json::Value;
use tvp_serve::{Server, ServerConfig};

fn temp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp-serve-api-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, tweak: impl FnOnce(&mut ServerConfig)) -> (Server, String, PathBuf) {
    let state_dir = temp_state(name);
    let mut config = ServerConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        retry_base: Duration::from_millis(10),
        drain_budget: Duration::ZERO,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let server = Server::start(config).expect("daemon starts");
    let addr = server.addr().to_string();
    (server, addr, state_dir)
}

fn submit(addr: &str, body: &str) -> ClientReply {
    request(addr, "POST", "/jobs", body).expect("submit request")
}

fn job_id(reply: &ClientReply) -> String {
    assert_eq!(reply.status, 202, "submit failed: {}", reply.body);
    Value::parse(&reply.body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

/// Polls `GET /jobs/{id}` until the job reaches a terminal state.
fn wait_terminal(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "GET", &format!("/jobs/{id}"), "").expect("status request");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = Value::parse(&reply.body).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap();
        if !matches!(state, "pending" | "running") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}`");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn full_queue_answers_429_with_retry_after_and_stays_healthy() {
    let (mut server, addr, state_dir) = start("burst", |c| c.max_queue = 8);

    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..32 {
        let reply = submit(
            &addr,
            &format!(r#"{{"name":"burst-{i}","cells":300,"seed":{i}}}"#),
        );
        match reply.status {
            202 => accepted += 1,
            429 => {
                rejected += 1;
                let retry_after = reply
                    .header("retry-after")
                    .expect("429 carries Retry-After");
                assert!(retry_after.parse::<u64>().unwrap() >= 1);
            }
            status => panic!("unexpected status {status}: {}", reply.body),
        }
    }
    assert_eq!(accepted + rejected, 32);
    // The queue holds 8; the single worker can drain a few during the
    // burst, but most of the 32 must bounce.
    assert!(accepted >= 8, "only {accepted} accepted");
    assert!(rejected >= 10, "only {rejected} rejected");

    // The daemon is still fully responsive after the burst.
    let health = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    let metrics = request(&addr, "GET", "/metrics", "").unwrap();
    assert!(
        metrics
            .body
            .contains(&format!("tvp_jobs_rejected_total {rejected}")),
        "{}",
        metrics.body
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn injected_fault_retries_to_success_and_exhaustion_dead_letters() {
    let (mut server, addr, state_dir) = start("retry", |c| c.workers = 2);

    // Default max_attempts (3): the checkpoint-write fault fails attempt
    // 1 with a retryable typed error; attempt 2 runs clean and succeeds.
    let healing = job_id(&submit(
        &addr,
        r#"{"name":"healing","cells":200,"seed":3,"inject_faults":["io-error:checkpoint-write:global"]}"#,
    ));
    // max_attempts 1: the same fault becomes terminal immediately.
    let doomed = job_id(&submit(
        &addr,
        r#"{"name":"doomed","cells":200,"seed":3,"max_attempts":1,"inject_faults":["io-error:checkpoint-write:global"]}"#,
    ));

    let healed = wait_terminal(&addr, &healing);
    assert_eq!(
        healed.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        healed.to_json()
    );
    assert_eq!(healed.get("retries").unwrap().as_u64(), Some(1));
    assert_eq!(healed.get("attempts").unwrap().as_u64(), Some(2));
    assert!(healed.get("digest").unwrap().as_str().unwrap().len() == 16);

    let dead = wait_terminal(&addr, &doomed);
    assert_eq!(
        dead.get("state").unwrap().as_str(),
        Some("dead-letter"),
        "{}",
        dead.to_json()
    );
    let error = dead.get("error").unwrap().as_str().unwrap();
    assert!(error.contains("injected I/O failure"), "{error}");

    // The healed job's placement is served as Bookshelf .pl text.
    let pl = request(&addr, "GET", &format!("/jobs/{healing}/placement"), "").unwrap();
    assert_eq!(pl.status, 200);
    assert!(
        pl.body.contains("UCLA pl") || pl.body.contains(" : N"),
        "{}",
        pl.body
    );
    // The dead-lettered one has none.
    let none = request(&addr, "GET", &format!("/jobs/{doomed}/placement"), "").unwrap();
    assert_eq!(none.status, 404);

    let metrics = request(&addr, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("tvp_retries_total 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("tvp_jobs_dead_letter_total 1"),
        "{}",
        metrics.body
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn deadline_returns_legal_best_so_far_instead_of_killing() {
    let (mut server, addr, state_dir) = start("deadline", |c| c.workers = 1);

    let id = job_id(&submit(
        &addr,
        r#"{"name":"rushed","cells":800,"seed":5,"deadline_seconds":0.01}"#,
    ));
    let doc = wait_terminal(&addr, &id);
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        doc.to_json()
    );
    assert_eq!(doc.get("stopped_early").unwrap().as_bool(), Some(true));
    // Even a deadline-stopped job reports real metrics and a placement.
    assert!(
        doc.get("metrics")
            .unwrap()
            .get("wirelength")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn pending_jobs_cancel_cleanly_and_terminal_cancels_conflict() {
    let (mut server, addr, state_dir) = start("cancel", |c| c.workers = 1);

    // Occupy the single worker, then queue a victim.
    let runner = job_id(&submit(&addr, r#"{"name":"runner","cells":500,"seed":1}"#));
    let victim = job_id(&submit(&addr, r#"{"name":"victim","cells":500,"seed":2}"#));

    let reply = request(&addr, "POST", &format!("/jobs/{victim}/cancel"), "").unwrap();
    assert_eq!(reply.status, 202, "{}", reply.body);
    let doc = wait_terminal(&addr, &victim);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("cancelled"));

    // Cancelling a terminal job is a conflict, not a crash.
    let again = request(&addr, "POST", &format!("/jobs/{victim}/cancel"), "").unwrap();
    assert_eq!(again.status, 409);

    let done = wait_terminal(&addr, &runner);
    assert_eq!(done.get("state").unwrap().as_str(), Some("done"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn malformed_submissions_and_unknown_routes_answer_4xx() {
    let (mut server, addr, state_dir) = start("reject", |c| c.workers = 1);

    for (body, needle) in [
        ("not json", "malformed JSON"),
        ("{}", "supply either"),
        (
            r#"{"cells":100,"inject_faults":["bogus"]}"#,
            "unknown fault kind",
        ),
    ] {
        let reply = submit(&addr, body);
        assert_eq!(reply.status, 400, "{body}: {}", reply.body);
        assert!(reply.body.contains(needle), "{body}: {}", reply.body);
    }
    assert_eq!(request(&addr, "GET", "/jobs/nope", "").unwrap().status, 404);
    assert_eq!(request(&addr, "GET", "/nothing", "").unwrap().status, 404);
    assert_eq!(request(&addr, "DELETE", "/jobs", "").unwrap().status, 405);

    // A shutdown request is acknowledged and surfaced to the host loop.
    assert_eq!(request(&addr, "POST", "/shutdown", "").unwrap().status, 202);
    assert!(server.shutdown_requested());

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}
