//! Property-based tests for the multilevel bisector.

use proptest::prelude::*;
use tvp_partition::{bisect, bisect_fixed, BisectConfig, FixedSide, Hypergraph};

/// Random hypergraph: vertex weights plus nets of 2–6 distinct vertices.
fn hypergraph_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<u32>>)> {
    (4usize..40).prop_flat_map(|n| {
        let weights = prop::collection::vec(0.1f64..10.0, n);
        let nets = prop::collection::vec(
            prop::collection::hash_set(0..n as u32, 2..(n.min(6) + 1)),
            1..50,
        )
        .prop_map(|nets| {
            nets.into_iter()
                .map(|s| s.into_iter().collect::<Vec<u32>>())
                .collect::<Vec<_>>()
        });
        (weights, nets)
    })
}

fn build(weights: &[f64], nets: &[Vec<u32>]) -> Hypergraph {
    let mut hg = Hypergraph::with_vertex_weights(weights.to_vec());
    for net in nets {
        hg.add_net(net, 1.0);
    }
    hg.finalize();
    hg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bisection_invariants((weights, nets) in hypergraph_strategy()) {
        let hg = build(&weights, &nets);
        let result = bisect(&hg, &BisectConfig::default());

        // Every vertex got a side, and sides are 0/1.
        prop_assert_eq!(result.sides.len(), hg.num_vertices());
        prop_assert!(result.sides.iter().all(|&s| s <= 1));

        // The reported cut equals an independent recomputation.
        prop_assert!((result.cut - hg.cut(&result.sides)).abs() < 1e-9);

        // Reported side weights match the assignment.
        let mut w = [0.0f64; 2];
        for (v, &s) in result.sides.iter().enumerate() {
            w[s as usize] += hg.vertex_weight(v as u32);
        }
        prop_assert!((w[0] - result.side_weights[0]).abs() < 1e-9);
        prop_assert!((w[1] - result.side_weights[1]).abs() < 1e-9);

        // Balance: within tolerance plus the single-vertex FM slack.
        let total = hg.total_vertex_weight();
        let wmax = (0..hg.num_vertices() as u32)
            .map(|v| hg.vertex_weight(v))
            .fold(0.0f64, f64::max);
        let limit = 0.6 * total + wmax + 1e-9;
        prop_assert!(w[0] <= limit, "side0 = {}, limit = {}", w[0], limit);
        prop_assert!(w[1] <= limit, "side1 = {}, limit = {}", w[1], limit);
    }

    #[test]
    fn fixed_vertices_always_respected(
        (weights, nets) in hypergraph_strategy(),
        pins in prop::collection::vec(0usize..40, 1..6),
    ) {
        let hg = build(&weights, &nets);
        let n = hg.num_vertices();
        let mut fixed = vec![FixedSide::Free; n];
        for (i, &p) in pins.iter().enumerate() {
            let v = p % n;
            fixed[v] = if i % 2 == 0 { FixedSide::Side0 } else { FixedSide::Side1 };
        }
        let result = bisect_fixed(&hg, &fixed, &BisectConfig::default());
        for (v, &f) in fixed.iter().enumerate() {
            match f {
                FixedSide::Side0 => prop_assert_eq!(result.sides[v], 0),
                FixedSide::Side1 => prop_assert_eq!(result.sides[v], 1),
                FixedSide::Free => {}
            }
        }
    }

    #[test]
    fn determinism((weights, nets) in hypergraph_strategy()) {
        let hg = build(&weights, &nets);
        let config = BisectConfig::default().with_seed(7);
        let a = bisect(&hg, &config);
        let b = bisect(&hg, &config);
        prop_assert_eq!(a, b);
    }

    /// The deterministic-merge contract: the multilevel V-cycle fans its
    /// starts across the worker pool, but the winner is folded in start
    /// order, so the full bisection (sides, cut, side weights) must be
    /// bitwise identical whether the pool has one worker or four.
    #[test]
    fn parallel_bisection_bitwise_equals_serial((weights, nets) in hypergraph_strategy()) {
        let hg = build(&weights, &nets);
        let config = BisectConfig::default().with_seed(11).with_starts(4);
        let serial = tvp_parallel::with_threads(1, || bisect(&hg, &config));
        for threads in [2usize, 4] {
            let parallel = tvp_parallel::with_threads(threads, || bisect(&hg, &config));
            prop_assert_eq!(&serial, &parallel,
                "bisection diverged between 1 and {} threads", threads);
        }
    }

    #[test]
    fn cut_never_exceeds_total_net_weight((weights, nets) in hypergraph_strategy()) {
        let hg = build(&weights, &nets);
        let result = bisect(&hg, &BisectConfig::default());
        prop_assert!(result.cut <= nets.len() as f64 + 1e-9);
        prop_assert!(result.cut >= 0.0);
    }
}
