//! Direct k-way partitioning: assign cells to device layers in one shot
//! with [`tvp_partition::partition_kway`], bypassing the full placer.
//!
//! ```sh
//! cargo run --release -p tvp-partition --example kway_layers [k]
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tvp_partition::{partition_kway, BisectConfig, Hypergraph};

fn main() {
    let k: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // A clustered random hypergraph: 16 clusters of 64 vertices with
    // intra-cluster nets plus sparse global nets.
    let clusters = 16usize;
    let size = 64usize;
    let n = clusters * size;
    let mut rng = SmallRng::seed_from_u64(42);
    let mut hg = Hypergraph::new(n);
    for c in 0..clusters {
        let base = (c * size) as u32;
        for _ in 0..size * 3 {
            let a = base + rng.random_range(0..size as u32);
            let b = base + rng.random_range(0..size as u32);
            if a != b {
                hg.add_net(&[a, b], 1.0);
            }
        }
    }
    for _ in 0..n / 4 {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b {
            hg.add_net(&[a, b], 1.0);
        }
    }
    hg.finalize();

    // Tolerance compounds across the recursion levels, so a k-way split
    // wanting tight balance should hand the bisector a tighter budget.
    let config = BisectConfig {
        tolerance: 0.03,
        ..BisectConfig::default().with_starts(2)
    };
    let result = partition_kway(&hg, k, &config);
    println!("{n} vertices, {} nets → {k} parts", hg.num_nets());
    println!(
        "cut = {:.0} nets, connectivity = {:.0}, imbalance = {:.1}%",
        result.cut,
        result.connectivity,
        result.imbalance() * 100.0
    );
    for (p, w) in result.part_weights.iter().enumerate() {
        println!("  part {p}: weight {w:.0}");
    }
}
