//! K-way partitioning by recursive bisection.
//!
//! The placer's 3D recursive bisection effectively builds a k-way
//! partition level by level; this module packages the same construction
//! as a standalone API for users who want `k` balanced parts directly
//! (e.g. one part per device layer).

use crate::{bisect_fixed, BisectConfig, FixedSide, Hypergraph};
use tvp_parallel as parallel;

/// Below this many vertices a subtree is recursed serially: the bisection
/// itself is microseconds, so handing both halves to the worker pool
/// costs more than it saves. Results are identical either way — sibling
/// subtrees share no state and their seeds derive from tree depth alone.
const KWAY_PARALLEL_MIN_VERTICES: usize = 256;

/// Result of a k-way partition.
#[derive(Clone, PartialEq, Debug)]
pub struct KwayPartition {
    /// Part index (0..k) of each vertex.
    pub parts: Vec<u32>,
    /// Number of parts.
    pub k: u32,
    /// Weighted hyperedge cut: total weight of nets spanning ≥ 2 parts.
    pub cut: f64,
    /// Weighted connectivity metric: Σ over nets of `w·(λ − 1)` where `λ`
    /// is the number of parts the net touches.
    pub connectivity: f64,
    /// Total vertex weight per part.
    pub part_weights: Vec<f64>,
}

impl KwayPartition {
    /// Largest relative deviation of any part from the mean part weight.
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.part_weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let mean = total / self.part_weights.len() as f64;
        self.part_weights
            .iter()
            .map(|w| (w - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

/// Partitions `hg` into `k` balanced parts by recursive bisection.
///
/// Uneven `k` splits allocate `ceil/floor` halves with matching target
/// fractions, so any `k ≥ 1` is supported.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition_kway(hg: &Hypergraph, k: u32, config: &BisectConfig) -> KwayPartition {
    assert!(k >= 1, "k must be at least 1");
    let n = hg.num_vertices();
    let all: Vec<u32> = (0..n as u32).collect();
    // `all` is the identity ordering, so the returned slice-aligned parts
    // are already indexed by vertex.
    let parts = split_recursive(hg, &all, 0, k, config, 0);

    // Metrics.
    let mut cut = 0.0;
    let mut connectivity = 0.0;
    let mut touched: Vec<u32> = Vec::new();
    for e in 0..hg.num_nets() as u32 {
        touched.clear();
        for &v in hg.net(e) {
            let p = parts[v as usize];
            if !touched.contains(&p) {
                touched.push(p);
            }
        }
        if touched.len() > 1 {
            cut += hg.net_weight(e);
            connectivity += hg.net_weight(e) * (touched.len() - 1) as f64;
        }
    }
    let mut part_weights = vec![0.0; k as usize];
    for (v, &p) in parts.iter().enumerate() {
        part_weights[p as usize] += hg.vertex_weight(v as u32);
    }
    KwayPartition {
        parts,
        k,
        cut,
        connectivity,
        part_weights,
    }
}

/// Recursively partitions `vertices` into parts `first_part..first_part+k`
/// and returns the part of each vertex, aligned with the `vertices` slice.
///
/// Returning assignments (instead of scattering into a shared array)
/// keeps the two sibling recursions free of shared mutable state, so
/// large subtrees run concurrently via [`parallel::join`].
fn split_recursive(
    hg: &Hypergraph,
    vertices: &[u32],
    first_part: u32,
    k: u32,
    config: &BisectConfig,
    depth: u64,
) -> Vec<u32> {
    if k == 1 || vertices.is_empty() {
        return vec![first_part; vertices.len()];
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;

    // Build the sub-hypergraph induced on `vertices`.
    let mut local_of = vec![u32::MAX; hg.num_vertices()];
    let mut weights = Vec::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        local_of[v as usize] = i as u32;
        weights.push(hg.vertex_weight(v));
    }
    let mut sub = Hypergraph::with_vertex_weights(weights);
    let mut pins = Vec::new();
    for e in 0..hg.num_nets() as u32 {
        pins.clear();
        for &v in hg.net(e) {
            let l = local_of[v as usize];
            if l != u32::MAX {
                pins.push(l);
            }
        }
        if pins.len() >= 2 {
            sub.add_net(&pins, hg.net_weight(e));
        }
    }
    sub.finalize();

    let sub_config = BisectConfig {
        target_fraction: k0 as f64 / k as f64,
        seed: config.seed.wrapping_add(depth.wrapping_mul(0x9E37_79B9)),
        ..config.clone()
    };
    let fixed = vec![FixedSide::Free; vertices.len()];
    let result = bisect_fixed(&sub, &fixed, &sub_config);

    // Split into sides, remembering each vertex's position in `vertices`
    // so the children's results can be scattered back into alignment.
    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    let mut idx0 = Vec::new();
    let mut idx1 = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if result.side(i as u32) == 0 {
            side0.push(v);
            idx0.push(i);
        } else {
            side1.push(v);
            idx1.push(i);
        }
    }
    // Degenerate guard: force an even split so recursion terminates.
    if side0.is_empty() || side1.is_empty() {
        let mut merged = side0;
        merged.append(&mut side1);
        let mut merged_idx = idx0;
        merged_idx.append(&mut idx1);
        let half = merged.len() * k0 as usize / k as usize;
        let half = half.max(1).min(merged.len().saturating_sub(1)).max(1);
        side1 = merged.split_off(half);
        side0 = merged;
        idx1 = merged_idx.split_off(half);
        idx0 = merged_idx;
    }
    let (r0, r1) = if vertices.len() >= KWAY_PARALLEL_MIN_VERTICES {
        parallel::join(
            || split_recursive(hg, &side0, first_part, k0, config, depth * 2 + 1),
            || split_recursive(hg, &side1, first_part + k0, k1, config, depth * 2 + 2),
        )
    } else {
        (
            split_recursive(hg, &side0, first_part, k0, config, depth * 2 + 1),
            split_recursive(hg, &side1, first_part + k0, k1, config, depth * 2 + 2),
        )
    };
    let mut out = vec![0u32; vertices.len()];
    for (j, &i) in idx0.iter().enumerate() {
        out[i] = r0[j];
    }
    for (j, &i) in idx1.iter().enumerate() {
        out[i] = r1[j];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// `k` cliques chained by weak bridges — the natural k-way answer is
    /// one clique per part.
    fn clique_chain(k: usize, size: usize) -> Hypergraph {
        let mut hg = Hypergraph::new(k * size);
        for c in 0..k {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    hg.add_net(&[base + i, base + j], 1.0);
                }
            }
            if c + 1 < k {
                hg.add_net(&[base, base + size as u32], 0.1);
            }
        }
        hg.finalize();
        hg
    }

    #[test]
    fn four_way_recovers_four_cliques() {
        let hg = clique_chain(4, 8);
        let result = partition_kway(&hg, 4, &BisectConfig::default());
        assert_eq!(result.k, 4);
        // Each clique must land in one part.
        for c in 0..4 {
            let first = result.parts[c * 8];
            for i in 0..8 {
                assert_eq!(result.parts[c * 8 + i], first, "clique {c} split");
            }
        }
        // Cut = the 3 bridges only.
        assert!((result.cut - 0.3).abs() < 1e-9, "cut {}", result.cut);
        assert!(
            result.imbalance() < 1e-9,
            "perfectly balanced by construction"
        );
    }

    #[test]
    fn parts_cover_the_requested_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hg = Hypergraph::new(90);
        for _ in 0..200 {
            let a = rng.random_range(0..90u32);
            let b = rng.random_range(0..90u32);
            if a != b {
                hg.add_net(&[a, b], 1.0);
            }
        }
        hg.finalize();
        for k in [1u32, 2, 3, 5, 7] {
            let result = partition_kway(&hg, k, &BisectConfig::default());
            let used: std::collections::HashSet<u32> = result.parts.iter().copied().collect();
            assert!(used.iter().all(|&p| p < k));
            assert_eq!(used.len(), k as usize, "k = {k}: every part used");
            assert!(
                result.imbalance() < 0.5,
                "k = {k}: imbalance {}",
                result.imbalance()
            );
            assert!(result.connectivity >= result.cut);
        }
    }

    #[test]
    fn one_way_is_trivial() {
        let hg = clique_chain(2, 4);
        let result = partition_kway(&hg, 1, &BisectConfig::default());
        assert!(result.parts.iter().all(|&p| p == 0));
        assert_eq!(result.cut, 0.0);
        assert_eq!(result.connectivity, 0.0);
    }

    #[test]
    fn connectivity_exceeds_cut_for_spanning_nets() {
        // One net touching all 4 parts: cut 1, connectivity 3.
        let mut hg = Hypergraph::new(8);
        hg.add_net(&[0, 2, 4, 6], 1.0);
        // Pair the vertices so bisection keeps {2i, 2i+1} together.
        for i in 0..4u32 {
            hg.add_net(&[2 * i, 2 * i + 1], 10.0);
        }
        hg.finalize();
        let result = partition_kway(&hg, 4, &BisectConfig::default());
        assert_eq!(result.cut, 1.0);
        assert_eq!(result.connectivity, 3.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_parts_rejected() {
        let hg = Hypergraph::new(4);
        let _ = partition_kway(&hg, 0, &BisectConfig::default());
    }

    #[test]
    fn parallel_recursion_matches_serial_bitwise() {
        // Large enough that the sibling recursion crosses
        // KWAY_PARALLEL_MIN_VERTICES and actually forks.
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 600u32;
        let mut hg = Hypergraph::new(n as usize);
        for i in 0..n {
            hg.add_net(&[i, (i + 1) % n], 1.0);
        }
        for _ in 0..300 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                hg.add_net(&[a, b], 1.0);
            }
        }
        hg.finalize();
        let serial = parallel::with_threads(1, || partition_kway(&hg, 5, &BisectConfig::default()));
        for threads in [2, 4] {
            let par = parallel::with_threads(threads, || {
                partition_kway(&hg, 5, &BisectConfig::default())
            });
            assert_eq!(serial, par, "threads = {threads}");
        }
    }
}
