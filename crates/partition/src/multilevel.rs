//! The multilevel V-cycle driver and its public result types.

use crate::coarsen::{coarsen_once, CoarseLevel, CoarsenWorkspace};
use crate::fm::FmWorkspace;
use crate::initial::initial_partition;
use crate::{refine, BisectConfig, Hypergraph, StopFn};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::borrow::Cow;
use tvp_parallel as parallel;

/// Pre-assignment of a vertex for terminal propagation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FixedSide {
    /// The bisector may place the vertex on either side.
    #[default]
    Free,
    /// The vertex is pinned to side 0.
    Side0,
    /// The vertex is pinned to side 1.
    Side1,
}

/// Result of a bisection.
#[derive(Clone, PartialEq, Debug)]
pub struct Bisection {
    /// Side (0 or 1) of each vertex.
    pub sides: Vec<u8>,
    /// Weighted hyperedge cut of the assignment.
    pub cut: f64,
    /// Total vertex weight on each side.
    pub side_weights: [f64; 2],
}

impl Bisection {
    /// Side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn side(&self, v: u32) -> u8 {
        self.sides[v as usize]
    }

    /// Weight imbalance: `|w0 - w1| / (w0 + w1)`, 0 for a perfect split.
    pub fn imbalance(&self) -> f64 {
        let [w0, w1] = self.side_weights;
        let total = w0 + w1;
        if total == 0.0 {
            0.0
        } else {
            (w0 - w1).abs() / total
        }
    }
}

/// Bisects a hypergraph with no fixed vertices.
///
/// Convenience wrapper over [`bisect_fixed`]. If the hypergraph was not
/// [finalized](Hypergraph::finalize), a finalized copy is made internally
/// (callers that bisect repeatedly should finalize once themselves).
pub fn bisect(hg: &Hypergraph, config: &BisectConfig) -> Bisection {
    bisect_fixed(hg, &vec![FixedSide::Free; hg.num_vertices()], config)
}

/// Bisects a hypergraph, honoring per-vertex side pins.
///
/// Runs `config.num_starts` independent multilevel V-cycles with seeds
/// `config.seed + i` and returns the assignment with the smallest cut
/// (ties broken by balance).
///
/// The starts are embarrassingly parallel: each V-cycle owns its RNG and
/// touches no shared state, so they run through the worker pool and the
/// winner is picked by folding the candidates **in start order** — the
/// exact comparison sequence of the serial loop, so the result is bitwise
/// identical for every thread count.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed(hg: &Hypergraph, fixed: &[FixedSide], config: &BisectConfig) -> Bisection {
    bisect_fixed_with_stop(hg, fixed, config, None)
}

/// [`bisect_fixed`] with a cooperative cancellation probe.
///
/// `stop` is polled between coarsening levels and every ~1k heap
/// operations inside FM refinement. Once it returns `true`, each running
/// start finishes by rolling back to the best legal assignment it has
/// seen, so the returned [`Bisection`] is always consistent — just less
/// refined than an uncancelled run's.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed_with_stop(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
    stop: Option<&StopFn>,
) -> Bisection {
    assert_eq!(fixed.len(), hg.num_vertices());
    let hg = prepared(hg);
    let hg = hg.as_ref();

    let candidates = parallel::map_indexed(config.num_starts.max(1), |start| {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(start as u64));
        let sides = solve(hg, fixed, config, &mut rng, stop, None);
        summarize(hg, sides)
    });
    fold_best(candidates)
}

/// Wall-time breakdown of a bisection's phases, reported by
/// [`bisect_fixed_profiled`]. Times are summed across all starts, levels,
/// and passes; `levels` is the deepest V-cycle's level count.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct BisectProfile {
    /// Total time contracting levels (matching + coarse-net build).
    pub coarsen_ms: f64,
    /// Total time in the coarsest-level greedy initial partition.
    pub initial_ms: f64,
    /// Total time in FM refinement, across every level of every start.
    pub refine_ms: f64,
    /// Coarsening depth of the deepest V-cycle.
    pub levels: usize,
    /// Per-depth breakdown: index 0 is the caller's (finest) graph, index
    /// `d` the graph after `d` contractions. Each entry accumulates that
    /// depth's coarsen and FM-refine time across every start; the
    /// coarsest depth additionally absorbs the initial partition into its
    /// refine window's sibling field [`BisectProfile::initial_ms`].
    pub per_level: Vec<LevelProfile>,
}

/// One depth of the V-cycle in a [`BisectProfile`].
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct LevelProfile {
    /// Vertex count of the graph at this depth.
    pub vertices: usize,
    /// Time contracting this depth's graph into the next (0 at the
    /// coarsest depth, which is never contracted).
    pub coarsen_ms: f64,
    /// FM refinement time on this depth's graph.
    pub refine_ms: f64,
}

/// [`bisect_fixed`] with a per-phase wall-time breakdown.
///
/// A diagnostic entry point for benchmarking harnesses: the starts run
/// **serially** so the phase timings don't overlap, making this slower
/// than [`bisect_fixed`] for `num_starts > 1` on multi-core hosts. The
/// returned assignment is selected by the same fold as the production
/// path.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed_profiled(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
) -> (Bisection, BisectProfile) {
    assert_eq!(fixed.len(), hg.num_vertices());
    let hg = prepared(hg);
    let hg = hg.as_ref();
    let mut profile = BisectProfile::default();
    let candidates: Vec<Bisection> = (0..config.num_starts.max(1))
        .map(|start| {
            let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(start as u64));
            let sides = solve(hg, fixed, config, &mut rng, None, Some(&mut profile));
            summarize(hg, sides)
        })
        .collect();
    (fold_best(candidates), profile)
}

/// Picks the best candidate **in start order** — the exact comparison
/// sequence of the serial loop, so the winner is identical for every
/// thread count.
fn fold_best(candidates: Vec<Bisection>) -> Bisection {
    let mut best: Option<Bisection> = None;
    for candidate in candidates {
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.cut < b.cut - 1e-12
                    || (candidate.cut <= b.cut + 1e-12 && candidate.imbalance() < b.imbalance())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    // At least one candidate always exists; the empty fallback keeps this
    // path panic-free regardless.
    best.unwrap_or(Bisection {
        sides: Vec::new(),
        cut: 0.0,
        side_weights: [0.0; 2],
    })
}

/// Returns `hg` finalized, borrowing when it already is.
fn prepared(hg: &Hypergraph) -> Cow<'_, Hypergraph> {
    if hg_is_ready(hg) {
        Cow::Borrowed(hg)
    } else {
        let mut owned = hg.clone();
        owned.finalize();
        Cow::Owned(owned)
    }
}

/// A bisection whose side weights violate the configured balance
/// tolerance (returned by [`bisect_fixed_checked`]). Carries the rejected
/// assignment so a caller that exhausts its retries can still accept the
/// best effort.
#[derive(Clone, PartialEq, Debug)]
pub struct ImbalanceError {
    /// The out-of-tolerance assignment.
    pub bisection: Bisection,
    /// Weight fraction side 0 actually received.
    pub fraction: f64,
    /// The target fraction the config asked for.
    pub target_fraction: f64,
    /// Allowed deviation from the target fraction.
    pub tolerance: f64,
}

impl std::fmt::Display for ImbalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bisection imbalance: side 0 holds {:.3} of the weight, target {:.3} ± {:.3}",
            self.fraction, self.target_fraction, self.tolerance
        )
    }
}

impl std::error::Error for ImbalanceError {}

/// [`bisect_fixed`], but validates the result against the configured
/// balance tolerance instead of silently accepting an out-of-tolerance
/// split (which the FM refiner can produce on pathological weight
/// distributions, e.g. one vertex dominating the total weight).
///
/// # Errors
///
/// Returns [`ImbalanceError`] (carrying the rejected assignment) when
/// side 0's weight fraction deviates from `config.target_fraction` by
/// more than `config.tolerance`. Typical recovery: retry with
/// [`BisectConfig::relaxed`], and accept the carried best effort once
/// retries are exhausted.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed_checked(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
) -> Result<Bisection, Box<ImbalanceError>> {
    bisect_fixed_checked_with_stop(hg, fixed, config, None)
}

/// [`bisect_fixed_checked`] with a cooperative cancellation probe (see
/// [`bisect_fixed_with_stop`]).
///
/// # Errors
///
/// Returns [`ImbalanceError`] exactly like [`bisect_fixed_checked`]. A
/// cancelled run can legitimately trip it (refinement stopped before
/// rebalancing), so callers should treat the carried best effort as the
/// answer once their budget is spent.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed_checked_with_stop(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
    stop: Option<&StopFn>,
) -> Result<Bisection, Box<ImbalanceError>> {
    let bisection = bisect_fixed_with_stop(hg, fixed, config, stop);
    let [w0, w1] = bisection.side_weights;
    let total = w0 + w1;
    if total == 0.0 {
        return Ok(bisection);
    }
    let fraction = w0 / total;
    // Small epsilon so float noise at the boundary never flips a pass
    // into a retry.
    if (fraction - config.target_fraction).abs() <= config.tolerance + 1e-9 {
        Ok(bisection)
    } else {
        Err(Box::new(ImbalanceError {
            fraction,
            target_fraction: config.target_fraction,
            tolerance: config.tolerance,
            bisection,
        }))
    }
}

fn hg_is_ready(hg: &Hypergraph) -> bool {
    hg.has_incidence()
}

fn summarize(hg: &Hypergraph, sides: Vec<u8>) -> Bisection {
    let cut = hg.cut(&sides);
    let mut side_weights = [0.0; 2];
    for (v, &s) in sides.iter().enumerate() {
        side_weights[s as usize] += hg.vertex_weight(v as u32);
    }
    Bisection {
        sides,
        cut,
        side_weights,
    }
}

/// One V-cycle: coarsen level by level onto a stack, partition the
/// coarsest level, then project and refine on the way back up.
///
/// The finest level stays borrowed from the caller; only coarsened levels
/// materialize vertices (each [`CoarseLevel`] owns its contracted graph,
/// fine→coarse map, and fixed-side vector). One [`CoarsenWorkspace`] and
/// one [`FmWorkspace`] are shared by every level so scratch buffers are
/// allocated once per V-cycle, not once per level per pass. The
/// down-sweep/up-sweep order replays the old recursion exactly — same RNG
/// draws, same refine sequence — so results are bitwise identical to the
/// recursive formulation.
fn solve(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
    rng: &mut SmallRng,
    stop: Option<&StopFn>,
    mut prof: Option<&mut BisectProfile>,
) -> Vec<u8> {
    let mut ws = CoarsenWorkspace::default();
    let mut fm_ws = FmWorkspace::default();
    let mut levels: Vec<CoarseLevel> = Vec::new();

    // Phase timer: zero-cost when no profile is attached (the production
    // path passes `None`, so the hot loop never reads the clock).
    macro_rules! timed {
        ($field:ident, $expr:expr) => {{
            let t = prof.as_ref().map(|_| std::time::Instant::now());
            let r = $expr;
            if let (Some(p), Some(t)) = (prof.as_deref_mut(), t) {
                p.$field += t.elapsed().as_secs_f64() * 1e3;
            }
            r
        }};
        // Variant that also charges the time to the per-depth entry.
        ($field:ident, $depth:expr, $vertices:expr, $expr:expr) => {{
            let t = prof.as_ref().map(|_| std::time::Instant::now());
            let r = $expr;
            if let (Some(p), Some(t)) = (prof.as_deref_mut(), t) {
                let ms = t.elapsed().as_secs_f64() * 1e3;
                p.$field += ms;
                let (depth, vertices) = ($depth, $vertices);
                if p.per_level.len() <= depth {
                    p.per_level.resize(depth + 1, LevelProfile::default());
                }
                p.per_level[depth].vertices = vertices;
                p.per_level[depth].$field += ms;
            }
            r
        }};
    }

    // Down-sweep: contract until small enough or matching stalls. A
    // cancelled run stops contracting and falls through to the initial
    // partition + (immediately cancelled) refinement, so it still returns
    // a legal assignment for the full graph.
    loop {
        if stop.is_some_and(|s| s()) {
            break;
        }
        let next = {
            let (cur_hg, cur_fixed) = match levels.last() {
                Some(l) => (&l.hg, l.fixed.as_slice()),
                None => (hg, fixed),
            };
            if cur_hg.num_vertices() <= config.coarsen_until {
                break;
            }
            timed!(
                coarsen_ms,
                levels.len(),
                cur_hg.num_vertices(),
                coarsen_once(cur_hg, cur_fixed, rng, &mut ws)
            )
        };
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    if let Some(p) = prof.as_deref_mut() {
        p.levels = p.levels.max(levels.len());
    }

    // Partition and refine the coarsest level.
    let (coarsest_hg, coarsest_fixed) = match levels.last() {
        Some(l) => (&l.hg, l.fixed.as_slice()),
        None => (hg, fixed),
    };
    let mut sides = timed!(
        initial_ms,
        initial_partition(coarsest_hg, coarsest_fixed, config, rng)
    );
    timed!(
        refine_ms,
        levels.len(),
        coarsest_hg.num_vertices(),
        refine(
            coarsest_hg,
            &mut sides,
            coarsest_fixed,
            config,
            &mut fm_ws,
            stop
        )
    );

    // Up-sweep: project through each level's map and refine on its fine
    // graph (the next level down the stack, or the caller's graph).
    for i in (0..levels.len()).rev() {
        let projected: Vec<u8> = levels[i].map.iter().map(|&c| sides[c as usize]).collect();
        sides = projected;
        let (fine_hg, fine_fixed) = match i.checked_sub(1).map(|j| &levels[j]) {
            Some(l) => (&l.hg, l.fixed.as_slice()),
            None => (hg, fixed),
        };
        timed!(
            refine_ms,
            i,
            fine_hg.num_vertices(),
            refine(fine_hg, &mut sides, fine_fixed, config, &mut fm_ws, stop)
        );
    }
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// `k` cliques of `size` vertices, chained by single bridge nets.
    fn clique_chain(k: usize, size: usize) -> Hypergraph {
        let mut hg = Hypergraph::new(k * size);
        for c in 0..k {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    hg.add_net(&[base + i, base + j], 1.0);
                }
            }
            if c + 1 < k {
                hg.add_net(&[base, base + size as u32], 0.5);
            }
        }
        hg.finalize();
        hg
    }

    #[test]
    fn finds_small_cut_on_clique_chain() {
        let hg = clique_chain(4, 8);
        let result = bisect(&hg, &BisectConfig::default());
        // The ideal split separates cliques {0,1} from {2,3}: cut 0.5.
        assert!(
            result.cut <= 1.0,
            "cut {} should not break cliques",
            result.cut
        );
        assert!(result.imbalance() <= 0.2 + 1e-9);
    }

    #[test]
    fn multilevel_handles_larger_random_graph() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 2000u32;
        let mut hg = Hypergraph::new(n as usize);
        // Ring of 2-pin nets + random chords: known cut exists (2 ring nets).
        for i in 0..n {
            hg.add_net(&[i, (i + 1) % n], 1.0);
        }
        for _ in 0..500 {
            let a = rng.random_range(0..n);
            let b = (a + rng.random_range(1..20)) % n;
            if a != b {
                hg.add_net(&[a, b], 1.0);
            }
        }
        hg.finalize();
        let result = bisect(&hg, &BisectConfig::default().with_starts(2));
        // A random split cuts ~50% of 2500 nets; multilevel should be far
        // below that, and balance must hold.
        assert!(result.cut < 250.0, "cut {} is too large", result.cut);
        assert!(result.imbalance() <= 0.2 + 1e-9);
        assert_eq!(result.cut, hg.cut(&result.sides), "reported cut is real");
    }

    #[test]
    fn fixed_vertices_are_respected_end_to_end() {
        let hg = clique_chain(4, 8);
        let n = hg.num_vertices();
        let mut fixed = vec![FixedSide::Free; n];
        fixed[0] = FixedSide::Side1;
        fixed[n - 1] = FixedSide::Side0;
        let result = bisect_fixed(&hg, &fixed, &BisectConfig::default());
        assert_eq!(result.side(0), 1);
        assert_eq!(result.side((n - 1) as u32), 0);
    }

    #[test]
    fn unfinalized_graph_is_accepted() {
        let mut hg = Hypergraph::new(4);
        hg.add_net(&[0, 1], 1.0);
        hg.add_net(&[2, 3], 1.0);
        // No finalize() on purpose.
        let result = bisect(&hg, &BisectConfig::default());
        assert_eq!(result.sides.len(), 4);
    }

    #[test]
    fn empty_graph() {
        let hg = Hypergraph::new(0);
        let result = bisect(&hg, &BisectConfig::default());
        assert!(result.sides.is_empty());
        assert_eq!(result.cut, 0.0);
    }

    #[test]
    fn vertices_without_nets_are_balanced() {
        let hg = Hypergraph::new(10);
        let result = bisect(&hg, &BisectConfig::default());
        assert!(result.imbalance() <= 0.2 + 1e-9);
    }

    #[test]
    fn restarts_never_hurt() {
        let hg = clique_chain(6, 6);
        let one = bisect(&hg, &BisectConfig::default().with_starts(1));
        let many = bisect(&hg, &BisectConfig::default().with_starts(8));
        assert!(many.cut <= one.cut + 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let hg = clique_chain(4, 8);
        let a = bisect(&hg, &BisectConfig::default().with_seed(42));
        let b = bisect(&hg, &BisectConfig::default().with_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_starts_match_serial_bitwise() {
        let hg = clique_chain(6, 6);
        let config = BisectConfig::default().with_starts(8);
        let serial = parallel::with_threads(1, || bisect(&hg, &config));
        for threads in [2, 4] {
            let par = parallel::with_threads(threads, || bisect(&hg, &config));
            assert_eq!(serial, par, "threads = {threads}");
        }
    }
}
