//! The multilevel V-cycle driver and its public result types.

use crate::coarsen::{coarsen_once, CoarseLevel, CoarsenWorkspace};
use crate::initial::initial_partition;
use crate::{refine, BisectConfig, Hypergraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::borrow::Cow;
use tvp_parallel as parallel;

/// Pre-assignment of a vertex for terminal propagation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FixedSide {
    /// The bisector may place the vertex on either side.
    #[default]
    Free,
    /// The vertex is pinned to side 0.
    Side0,
    /// The vertex is pinned to side 1.
    Side1,
}

/// Result of a bisection.
#[derive(Clone, PartialEq, Debug)]
pub struct Bisection {
    /// Side (0 or 1) of each vertex.
    pub sides: Vec<u8>,
    /// Weighted hyperedge cut of the assignment.
    pub cut: f64,
    /// Total vertex weight on each side.
    pub side_weights: [f64; 2],
}

impl Bisection {
    /// Side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn side(&self, v: u32) -> u8 {
        self.sides[v as usize]
    }

    /// Weight imbalance: `|w0 - w1| / (w0 + w1)`, 0 for a perfect split.
    pub fn imbalance(&self) -> f64 {
        let [w0, w1] = self.side_weights;
        let total = w0 + w1;
        if total == 0.0 {
            0.0
        } else {
            (w0 - w1).abs() / total
        }
    }
}

/// Bisects a hypergraph with no fixed vertices.
///
/// Convenience wrapper over [`bisect_fixed`]. If the hypergraph was not
/// [finalized](Hypergraph::finalize), a finalized copy is made internally
/// (callers that bisect repeatedly should finalize once themselves).
pub fn bisect(hg: &Hypergraph, config: &BisectConfig) -> Bisection {
    bisect_fixed(hg, &vec![FixedSide::Free; hg.num_vertices()], config)
}

/// Bisects a hypergraph, honoring per-vertex side pins.
///
/// Runs `config.num_starts` independent multilevel V-cycles with seeds
/// `config.seed + i` and returns the assignment with the smallest cut
/// (ties broken by balance).
///
/// The starts are embarrassingly parallel: each V-cycle owns its RNG and
/// touches no shared state, so they run through the worker pool and the
/// winner is picked by folding the candidates **in start order** — the
/// exact comparison sequence of the serial loop, so the result is bitwise
/// identical for every thread count.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed(hg: &Hypergraph, fixed: &[FixedSide], config: &BisectConfig) -> Bisection {
    assert_eq!(fixed.len(), hg.num_vertices());
    let hg: Cow<'_, Hypergraph> = if hg_is_ready(hg) {
        Cow::Borrowed(hg)
    } else {
        let mut owned = hg.clone();
        owned.finalize();
        Cow::Owned(owned)
    };
    let hg = hg.as_ref();

    let candidates = parallel::map_indexed(config.num_starts.max(1), |start| {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(start as u64));
        let sides = solve(hg, fixed, config, &mut rng);
        summarize(hg, sides)
    });
    let mut best: Option<Bisection> = None;
    for candidate in candidates {
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.cut < b.cut - 1e-12
                    || (candidate.cut <= b.cut + 1e-12 && candidate.imbalance() < b.imbalance())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    // `num_starts.max(1)` guarantees at least one candidate; the empty
    // fallback keeps this path panic-free regardless.
    best.unwrap_or(Bisection {
        sides: Vec::new(),
        cut: 0.0,
        side_weights: [0.0; 2],
    })
}

/// A bisection whose side weights violate the configured balance
/// tolerance (returned by [`bisect_fixed_checked`]). Carries the rejected
/// assignment so a caller that exhausts its retries can still accept the
/// best effort.
#[derive(Clone, PartialEq, Debug)]
pub struct ImbalanceError {
    /// The out-of-tolerance assignment.
    pub bisection: Bisection,
    /// Weight fraction side 0 actually received.
    pub fraction: f64,
    /// The target fraction the config asked for.
    pub target_fraction: f64,
    /// Allowed deviation from the target fraction.
    pub tolerance: f64,
}

impl std::fmt::Display for ImbalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bisection imbalance: side 0 holds {:.3} of the weight, target {:.3} ± {:.3}",
            self.fraction, self.target_fraction, self.tolerance
        )
    }
}

impl std::error::Error for ImbalanceError {}

/// [`bisect_fixed`], but validates the result against the configured
/// balance tolerance instead of silently accepting an out-of-tolerance
/// split (which the FM refiner can produce on pathological weight
/// distributions, e.g. one vertex dominating the total weight).
///
/// # Errors
///
/// Returns [`ImbalanceError`] (carrying the rejected assignment) when
/// side 0's weight fraction deviates from `config.target_fraction` by
/// more than `config.tolerance`. Typical recovery: retry with
/// [`BisectConfig::relaxed`], and accept the carried best effort once
/// retries are exhausted.
///
/// # Panics
///
/// Panics if `fixed.len() != hg.num_vertices()`.
pub fn bisect_fixed_checked(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
) -> Result<Bisection, Box<ImbalanceError>> {
    let bisection = bisect_fixed(hg, fixed, config);
    let [w0, w1] = bisection.side_weights;
    let total = w0 + w1;
    if total == 0.0 {
        return Ok(bisection);
    }
    let fraction = w0 / total;
    // Small epsilon so float noise at the boundary never flips a pass
    // into a retry.
    if (fraction - config.target_fraction).abs() <= config.tolerance + 1e-9 {
        Ok(bisection)
    } else {
        Err(Box::new(ImbalanceError {
            fraction,
            target_fraction: config.target_fraction,
            tolerance: config.tolerance,
            bisection,
        }))
    }
}

fn hg_is_ready(hg: &Hypergraph) -> bool {
    hg.has_incidence()
}

fn summarize(hg: &Hypergraph, sides: Vec<u8>) -> Bisection {
    let cut = hg.cut(&sides);
    let mut side_weights = [0.0; 2];
    for (v, &s) in sides.iter().enumerate() {
        side_weights[s as usize] += hg.vertex_weight(v as u32);
    }
    Bisection {
        sides,
        cut,
        side_weights,
    }
}

/// One V-cycle: coarsen level by level onto a stack, partition the
/// coarsest level, then project and refine on the way back up.
///
/// The finest level stays borrowed from the caller; only coarsened levels
/// materialize vertices (each [`CoarseLevel`] owns its contracted graph,
/// fine→coarse map, and fixed-side vector). One [`CoarsenWorkspace`] is
/// shared by every level so scratch buffers are allocated once per
/// V-cycle, not once per level. The down-sweep/up-sweep order replays the
/// old recursion exactly — same RNG draws, same refine sequence — so
/// results are bitwise identical to the recursive formulation.
fn solve(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
    rng: &mut SmallRng,
) -> Vec<u8> {
    let mut ws = CoarsenWorkspace::default();
    let mut levels: Vec<CoarseLevel> = Vec::new();

    // Down-sweep: contract until small enough or matching stalls.
    loop {
        let next = {
            let (cur_hg, cur_fixed) = match levels.last() {
                Some(l) => (&l.hg, l.fixed.as_slice()),
                None => (hg, fixed),
            };
            if cur_hg.num_vertices() <= config.coarsen_until {
                break;
            }
            coarsen_once(cur_hg, cur_fixed, rng, &mut ws)
        };
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }

    // Partition and refine the coarsest level.
    let (coarsest_hg, coarsest_fixed) = match levels.last() {
        Some(l) => (&l.hg, l.fixed.as_slice()),
        None => (hg, fixed),
    };
    let mut sides = initial_partition(coarsest_hg, coarsest_fixed, config, rng);
    refine(coarsest_hg, &mut sides, coarsest_fixed, config);

    // Up-sweep: project through each level's map and refine on its fine
    // graph (the next level down the stack, or the caller's graph).
    for i in (0..levels.len()).rev() {
        let projected: Vec<u8> = levels[i].map.iter().map(|&c| sides[c as usize]).collect();
        sides = projected;
        let (fine_hg, fine_fixed) = match i.checked_sub(1).map(|j| &levels[j]) {
            Some(l) => (&l.hg, l.fixed.as_slice()),
            None => (hg, fixed),
        };
        refine(fine_hg, &mut sides, fine_fixed, config);
    }
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// `k` cliques of `size` vertices, chained by single bridge nets.
    fn clique_chain(k: usize, size: usize) -> Hypergraph {
        let mut hg = Hypergraph::new(k * size);
        for c in 0..k {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    hg.add_net(&[base + i, base + j], 1.0);
                }
            }
            if c + 1 < k {
                hg.add_net(&[base, base + size as u32], 0.5);
            }
        }
        hg.finalize();
        hg
    }

    #[test]
    fn finds_small_cut_on_clique_chain() {
        let hg = clique_chain(4, 8);
        let result = bisect(&hg, &BisectConfig::default());
        // The ideal split separates cliques {0,1} from {2,3}: cut 0.5.
        assert!(
            result.cut <= 1.0,
            "cut {} should not break cliques",
            result.cut
        );
        assert!(result.imbalance() <= 0.2 + 1e-9);
    }

    #[test]
    fn multilevel_handles_larger_random_graph() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 2000u32;
        let mut hg = Hypergraph::new(n as usize);
        // Ring of 2-pin nets + random chords: known cut exists (2 ring nets).
        for i in 0..n {
            hg.add_net(&[i, (i + 1) % n], 1.0);
        }
        for _ in 0..500 {
            let a = rng.random_range(0..n);
            let b = (a + rng.random_range(1..20)) % n;
            if a != b {
                hg.add_net(&[a, b], 1.0);
            }
        }
        hg.finalize();
        let result = bisect(&hg, &BisectConfig::default().with_starts(2));
        // A random split cuts ~50% of 2500 nets; multilevel should be far
        // below that, and balance must hold.
        assert!(result.cut < 250.0, "cut {} is too large", result.cut);
        assert!(result.imbalance() <= 0.2 + 1e-9);
        assert_eq!(result.cut, hg.cut(&result.sides), "reported cut is real");
    }

    #[test]
    fn fixed_vertices_are_respected_end_to_end() {
        let hg = clique_chain(4, 8);
        let n = hg.num_vertices();
        let mut fixed = vec![FixedSide::Free; n];
        fixed[0] = FixedSide::Side1;
        fixed[n - 1] = FixedSide::Side0;
        let result = bisect_fixed(&hg, &fixed, &BisectConfig::default());
        assert_eq!(result.side(0), 1);
        assert_eq!(result.side((n - 1) as u32), 0);
    }

    #[test]
    fn unfinalized_graph_is_accepted() {
        let mut hg = Hypergraph::new(4);
        hg.add_net(&[0, 1], 1.0);
        hg.add_net(&[2, 3], 1.0);
        // No finalize() on purpose.
        let result = bisect(&hg, &BisectConfig::default());
        assert_eq!(result.sides.len(), 4);
    }

    #[test]
    fn empty_graph() {
        let hg = Hypergraph::new(0);
        let result = bisect(&hg, &BisectConfig::default());
        assert!(result.sides.is_empty());
        assert_eq!(result.cut, 0.0);
    }

    #[test]
    fn vertices_without_nets_are_balanced() {
        let hg = Hypergraph::new(10);
        let result = bisect(&hg, &BisectConfig::default());
        assert!(result.imbalance() <= 0.2 + 1e-9);
    }

    #[test]
    fn restarts_never_hurt() {
        let hg = clique_chain(6, 6);
        let one = bisect(&hg, &BisectConfig::default().with_starts(1));
        let many = bisect(&hg, &BisectConfig::default().with_starts(8));
        assert!(many.cut <= one.cut + 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let hg = clique_chain(4, 8);
        let a = bisect(&hg, &BisectConfig::default().with_seed(42));
        let b = bisect(&hg, &BisectConfig::default().with_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_starts_match_serial_bitwise() {
        let hg = clique_chain(6, 6);
        let config = BisectConfig::default().with_starts(8);
        let serial = parallel::with_threads(1, || bisect(&hg, &config));
        for threads in [2, 4] {
            let par = parallel::with_threads(threads, || bisect(&hg, &config));
            assert_eq!(serial, par, "threads = {threads}");
        }
    }
}
