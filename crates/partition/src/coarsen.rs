//! First-choice (heavy-edge) coarsening.

use crate::multilevel::FixedSide;
use crate::Hypergraph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use tvp_parallel as parallel;

/// One coarsening level: the coarse hypergraph plus the fine→coarse map.
pub(crate) struct CoarseLevel {
    pub hg: Hypergraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<u32>,
    pub fixed: Vec<FixedSide>,
}

/// Nets larger than this are ignored while scoring matches (they carry
/// almost no locality signal and make scoring quadratic).
const MAX_SCORING_NET: usize = 24;

/// Chunking floor for parallel coarse-net construction (each element is a
/// map + small sort, so chunks must be sizeable to amortize dispatch).
const NET_BUILD_MIN_CHUNK: usize = 1024;

/// Below this many nets the coarse-net build runs inline: pool dispatch
/// costs more than the whole loop at the deep, small levels of a V-cycle.
const NET_BUILD_SERIAL_BELOW: usize = 8192;

/// Scratch buffers reused across the coarsening levels of one V-cycle.
///
/// Matching needs several O(n) scratch vectors (visit order, mate array,
/// neighbor scores, coarse-pin staging). A V-cycle calls [`coarsen_once`]
/// once per level, so reusing one workspace turns per-level allocations
/// into amortized-free `clear()` + `resize()` on already-sized buffers.
#[derive(Default)]
pub(crate) struct CoarsenWorkspace {
    order: Vec<u32>,
    mate: Vec<u32>,
    score: Vec<f64>,
    touched: Vec<u32>,
    pins: Vec<u32>,
}

/// Performs one pass of first-choice matching and contracts the matches.
///
/// Fixed vertices are never matched (they stay singleton coarse vertices so
/// their side pins survive every level). Returns `None` when matching can
/// no longer shrink the graph meaningfully (< 5% reduction), signalling the
/// caller to stop coarsening. Scratch state lives in `ws` so repeated
/// levels reuse the same buffers.
pub(crate) fn coarsen_once(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    rng: &mut SmallRng,
    ws: &mut CoarsenWorkspace,
) -> Option<CoarseLevel> {
    let n = hg.num_vertices();
    let total = hg.total_vertex_weight();
    // Cap coarse vertex weight so balance remains achievable.
    let max_weight = (total / 16.0).max(total / n as f64 * 4.0);

    let CoarsenWorkspace {
        order,
        mate,
        score,
        touched,
        pins,
    } = ws;

    order.clear();
    order.extend(0..n as u32);
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    mate.clear();
    mate.resize(n, UNMATCHED);
    score.clear();
    score.resize(n, 0.0);
    touched.clear();
    let mut matched_pairs = 0usize;

    for &v in order.iter() {
        if mate[v as usize] != UNMATCHED || fixed[v as usize] != FixedSide::Free {
            continue;
        }
        // Score free unmatched neighbors by shared-net connectivity.
        touched.clear();
        for &e in hg.vertex_nets(v) {
            let pins = hg.net(e);
            if pins.len() < 2 || pins.len() > MAX_SCORING_NET {
                continue;
            }
            let s = hg.net_weight(e) / (pins.len() - 1) as f64;
            for &u in pins {
                if u != v && mate[u as usize] == UNMATCHED && fixed[u as usize] == FixedSide::Free {
                    if score[u as usize] == 0.0 {
                        touched.push(u);
                    }
                    score[u as usize] += s;
                }
            }
        }
        let wv = hg.vertex_weight(v);
        let mut best: Option<(f64, u32)> = None;
        for &u in touched.iter() {
            let s = score[u as usize];
            score[u as usize] = 0.0;
            if wv + hg.vertex_weight(u) > max_weight {
                continue;
            }
            if best.is_none_or(|(bs, bu)| s > bs || (s == bs && u < bu)) {
                best = Some((s, u));
            }
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            matched_pairs += 1;
        }
    }

    let coarse_n = n - matched_pairs;
    if coarse_n as f64 > 0.95 * n as f64 {
        return None;
    }

    // Assign coarse indices: each unmatched vertex and each matched pair
    // (identified by its lower index) gets one coarse vertex.
    let mut map = vec![0u32; n];
    let mut weights = Vec::with_capacity(coarse_n);
    let mut coarse_fixed = Vec::with_capacity(coarse_n);
    for v in 0..n {
        let m = mate[v];
        if m != UNMATCHED && (m as usize) < v {
            map[v] = map[m as usize];
            continue;
        }
        map[v] = weights.len() as u32;
        let mut w = hg.vertex_weight(v as u32);
        if m != UNMATCHED {
            w += hg.vertex_weight(m);
        }
        weights.push(w);
        coarse_fixed.push(fixed[v]);
    }

    // Coarse-net construction: map every fine net through `map`, sort,
    // dedup, and keep the survivors (≥ 2 distinct coarse pins). Each net
    // is independent, so chunks build local staging buffers in parallel
    // and a serial merge appends them **in chunk order** — the surviving
    // nets land in exactly the order the old serial loop produced, so the
    // coarse hypergraph is bitwise identical at every thread count.
    let mut coarse = Hypergraph::with_vertex_weights(weights);
    let num_nets = hg.num_nets();
    let build_chunk = |range: std::ops::Range<usize>, pins: &mut Vec<u32>| {
        let mut flat: Vec<u32> = Vec::new();
        let mut kept: Vec<(u32, f64)> = Vec::new();
        for e in range {
            pins.clear();
            pins.extend(hg.net(e as u32).iter().map(|&v| map[v as usize]));
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 {
                flat.extend_from_slice(pins);
                kept.push((pins.len() as u32, hg.net_weight(e as u32)));
            }
        }
        (flat, kept)
    };
    let staged = if num_nets < NET_BUILD_SERIAL_BELOW {
        vec![build_chunk(0..num_nets, pins)]
    } else {
        parallel::map_chunks(num_nets, NET_BUILD_MIN_CHUNK, |range| {
            let mut local_pins = Vec::new();
            build_chunk(range, &mut local_pins)
        })
    };
    for (flat, kept) in &staged {
        let mut off = 0usize;
        for &(len, weight) in kept {
            coarse.add_net_sorted(&flat[off..off + len as usize], weight);
            off += len as usize;
        }
    }
    coarse.finalize();

    Some(CoarseLevel {
        hg: coarse,
        map,
        fixed: coarse_fixed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        let mut hg = Hypergraph::new(n);
        for i in 0..n as u32 - 1 {
            hg.add_net(&[i, i + 1], 1.0);
        }
        hg.finalize();
        hg
    }

    #[test]
    fn shrinks_a_chain() {
        let hg = chain(64);
        let fixed = vec![FixedSide::Free; 64];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ws = CoarsenWorkspace::default();
        let level = coarsen_once(&hg, &fixed, &mut rng, &mut ws).expect("chain coarsens");
        assert!(level.hg.num_vertices() < 64);
        assert!(level.hg.num_vertices() >= 32, "matching is pairwise");
        // Weight conservation.
        let before = hg.total_vertex_weight();
        let after = level.hg.total_vertex_weight();
        assert!((before - after).abs() < 1e-9);
        // Map covers the coarse range.
        assert!(level
            .map
            .iter()
            .all(|&c| (c as usize) < level.hg.num_vertices()));
    }

    #[test]
    fn fixed_vertices_stay_singleton() {
        let hg = chain(16);
        let mut fixed = vec![FixedSide::Free; 16];
        fixed[0] = FixedSide::Side0;
        fixed[15] = FixedSide::Side1;
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ws = CoarsenWorkspace::default();
        let level = coarsen_once(&hg, &fixed, &mut rng, &mut ws).expect("coarsens");
        // The coarse vertices of the fixed fine vertices are fixed and
        // carry exactly the fine weight (no merging happened).
        let c0 = level.map[0] as usize;
        let c15 = level.map[15] as usize;
        assert_eq!(level.fixed[c0], FixedSide::Side0);
        assert_eq!(level.fixed[c15], FixedSide::Side1);
        assert_eq!(level.hg.vertex_weight(c0 as u32), 1.0);
        assert_eq!(level.hg.vertex_weight(c15 as u32), 1.0);
    }

    #[test]
    fn cut_is_preserved_under_projection() {
        let hg = chain(32);
        let fixed = vec![FixedSide::Free; 32];
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ws = CoarsenWorkspace::default();
        let level = coarsen_once(&hg, &fixed, &mut rng, &mut ws).unwrap();
        // Any coarse assignment, projected to fine, must yield cut ≤ the
        // fine cut sum of surviving nets plus dropped internal nets... in
        // fact projected fine cut == coarse cut because dropped nets are
        // internal to one coarse vertex and can never be cut.
        let coarse_sides: Vec<u8> = (0..level.hg.num_vertices())
            .map(|i| (i % 2) as u8)
            .collect();
        let fine_sides: Vec<u8> = level
            .map
            .iter()
            .map(|&c| coarse_sides[c as usize])
            .collect();
        assert_eq!(level.hg.cut(&coarse_sides), hg.cut(&fine_sides));
    }

    #[test]
    fn dense_clique_stops_eventually() {
        // Repeated coarsening must terminate with None.
        let mut hg = Hypergraph::new(8);
        let all: Vec<u32> = (0..8).collect();
        hg.add_net(&all, 1.0);
        hg.finalize();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ws = CoarsenWorkspace::default();
        let mut fixed = vec![FixedSide::Free; 8];
        let mut current = hg;
        for _ in 0..20 {
            match coarsen_once(&current, &fixed, &mut rng, &mut ws) {
                Some(level) => {
                    fixed = level.fixed;
                    current = level.hg;
                }
                None => return,
            }
        }
        panic!("coarsening never reached a fixed point");
    }
}
