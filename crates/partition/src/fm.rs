//! Fiduccia–Mattheyses refinement with lazy priority queues.
//!
//! Classic FM adapted to `f64` net weights: instead of integer gain
//! buckets, each side keeps a max-heap of `(gain, vertex)` candidates with
//! lazy re-evaluation — on pop, the gain is recomputed from the current net
//! side-counts and the entry is reinserted if stale. Each pass tentatively
//! moves every free vertex once (best-gain first, balance permitting) and
//! rolls back to the best prefix.

use crate::multilevel::FixedSide;
use crate::{BisectConfig, Hypergraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by gain (then vertex for determinism).
#[derive(PartialEq, Debug)]
struct Candidate {
    gain: f64,
    vertex: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// In-place FM refinement of `sides`. Returns the total cut improvement.
///
/// `fixed[v]` pins vertices; pinned vertices are never moved. `sides` must
/// be consistent with `fixed` on entry.
pub(crate) fn refine(
    hg: &Hypergraph,
    sides: &mut [u8],
    fixed: &[FixedSide],
    config: &BisectConfig,
) -> f64 {
    let n = hg.num_vertices();
    debug_assert_eq!(sides.len(), n);
    debug_assert_eq!(fixed.len(), n);
    let total = hg.total_vertex_weight();
    // Classic FM slack: a side must always be allowed to grow by at least
    // one (heaviest) vertex past its target, or perfectly balanced states
    // would be local minima with no legal moves at all.
    let wmax = (0..n as u32)
        .map(|v| hg.vertex_weight(v))
        .fold(0.0f64, f64::max);
    let max_side = [
        config
            .max_side0(total)
            .max(config.target_fraction * total + wmax),
        config
            .max_side1(total)
            .max((1.0 - config.target_fraction) * total + wmax),
    ];

    let mut total_improvement = 0.0;
    for _ in 0..config.max_passes {
        let improvement = fm_pass(hg, sides, fixed, max_side);
        total_improvement += improvement;
        if improvement <= 0.0 {
            break;
        }
    }
    total_improvement
}

/// One FM pass; returns the cut improvement it achieved (≥ 0).
fn fm_pass(hg: &Hypergraph, sides: &mut [u8], fixed: &[FixedSide], max_side: [f64; 2]) -> f64 {
    let n = hg.num_vertices();

    // Side-occupancy counts per net.
    let mut count = vec![[0u32; 2]; hg.num_nets()];
    for v in 0..n as u32 {
        for &e in hg.vertex_nets(v) {
            count[e as usize][sides[v as usize] as usize] += 1;
        }
    }
    let mut side_weight = [0.0f64; 2];
    for v in 0..n {
        side_weight[sides[v] as usize] += hg.vertex_weight(v as u32);
    }

    let gain_of = |v: u32, sides: &[u8], count: &[[u32; 2]]| -> f64 {
        let s = sides[v as usize] as usize;
        let t = 1 - s;
        let mut g = 0.0;
        for &e in hg.vertex_nets(v) {
            let c = count[e as usize];
            let w = hg.net_weight(e);
            if c[t] > 0 {
                if c[s] == 1 {
                    g += w; // net becomes uncut
                }
            } else {
                g -= w; // net becomes cut
            }
        }
        g
    };

    let mut heap = BinaryHeap::with_capacity(n);
    let mut locked = vec![false; n];
    for v in 0..n as u32 {
        if fixed[v as usize] == FixedSide::Free {
            heap.push(Candidate {
                gain: gain_of(v, sides, &count),
                vertex: v,
            });
        } else {
            locked[v as usize] = true;
        }
    }

    // Tentative move sequence with best-prefix rollback.
    let mut moves: Vec<u32> = Vec::new();
    let mut cum_gain = 0.0;
    let mut best_gain = 0.0;
    let mut best_len = 0usize;

    while let Some(Candidate { gain, vertex }) = heap.pop() {
        if locked[vertex as usize] {
            continue;
        }
        let current = gain_of(vertex, sides, &count);
        if current < gain - 1e-12 {
            // Stale entry: reinsert with the true gain.
            heap.push(Candidate {
                gain: current,
                vertex,
            });
            continue;
        }
        let s = sides[vertex as usize] as usize;
        let t = 1 - s;
        let w = hg.vertex_weight(vertex);
        if side_weight[t] + w > max_side[t] {
            // Balance forbids this move now; try again after others move.
            // Re-queue with a sentinel drop so we don't spin: lock it for
            // this pass instead.
            locked[vertex as usize] = true;
            continue;
        }

        // Commit the tentative move.
        locked[vertex as usize] = true;
        sides[vertex as usize] = t as u8;
        side_weight[s] -= w;
        side_weight[t] += w;
        for &e in hg.vertex_nets(vertex) {
            count[e as usize][s] -= 1;
            count[e as usize][t] += 1;
            // Gains of free vertices on this net may have changed; push
            // fresh entries (stale ones are skipped on pop).
            for &u in hg.net(e) {
                if !locked[u as usize] {
                    heap.push(Candidate {
                        gain: gain_of(u, sides, &count),
                        vertex: u,
                    });
                }
            }
        }
        moves.push(vertex);
        cum_gain += current;
        if cum_gain > best_gain + 1e-12 {
            best_gain = cum_gain;
            best_len = moves.len();
        }
    }

    // Roll back moves past the best prefix.
    for &v in &moves[best_len..] {
        sides[v as usize] ^= 1;
    }
    best_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::FixedSide;

    /// Two tight clusters joined by one weak net; start with a bad split.
    fn clustered() -> Hypergraph {
        let mut hg = Hypergraph::new(8);
        for c in [0u32, 4] {
            hg.add_net(&[c, c + 1], 4.0);
            hg.add_net(&[c + 1, c + 2], 4.0);
            hg.add_net(&[c + 2, c + 3], 4.0);
            hg.add_net(&[c, c + 3], 4.0);
        }
        hg.add_net(&[0, 4], 1.0);
        hg.finalize();
        hg
    }

    #[test]
    fn recovers_natural_clusters() {
        let hg = clustered();
        // Interleaved start: cut = all 8 cluster nets + maybe bridge.
        let mut sides = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = hg.cut(&sides);
        let fixed = vec![FixedSide::Free; 8];
        let gain = refine(&hg, &mut sides, &fixed, &BisectConfig::default());
        let after = hg.cut(&sides);
        assert!((before - gain - after).abs() < 1e-9, "gain accounting");
        assert_eq!(after, 1.0, "optimal split cuts only the bridge net");
        assert_eq!(sides[0], sides[1]);
        assert_eq!(sides[0], sides[2]);
        assert_eq!(sides[0], sides[3]);
        assert_ne!(sides[0], sides[4]);
    }

    #[test]
    fn respects_fixed_vertices() {
        let hg = clustered();
        let mut sides = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut fixed = vec![FixedSide::Free; 8];
        // Pin vertex 4 to side 0: the bridge can be uncut only by moving
        // the whole second cluster, which balance forbids... pin it and
        // verify it never moves.
        fixed[4] = FixedSide::Side1;
        sides[4] = 1;
        refine(&hg, &mut sides, &fixed, &BisectConfig::default());
        assert_eq!(sides[4], 1);
    }

    #[test]
    fn respects_balance() {
        // A star: center connected to 6 leaves. Unbalanced moves would put
        // everything on one side.
        let mut hg = Hypergraph::new(7);
        for leaf in 1..7u32 {
            hg.add_net(&[0, leaf], 1.0);
        }
        hg.finalize();
        let mut sides = vec![0, 0, 0, 1, 1, 1, 1];
        let cfg = BisectConfig {
            tolerance: 0.1,
            ..BisectConfig::default()
        };
        refine(&hg, &mut sides, &[FixedSide::Free; 7], &cfg);
        let w0 = sides.iter().filter(|&&s| s == 0).count();
        assert!((3..=4).contains(&w0), "split {w0}/7 violates tolerance");
    }

    #[test]
    fn no_negative_improvement() {
        let hg = clustered();
        let mut sides = vec![0, 0, 0, 0, 1, 1, 1, 1]; // already optimal
        let before = hg.cut(&sides);
        let gain = refine(
            &hg,
            &mut sides,
            &[FixedSide::Free; 8],
            &BisectConfig::default(),
        );
        assert!(gain >= 0.0);
        assert!(hg.cut(&sides) <= before);
    }
}
