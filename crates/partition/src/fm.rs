//! Fiduccia–Mattheyses refinement on flat SoA state with an incremental
//! gain array and a lazy priority queue.
//!
//! Classic FM adapted to `f64` net weights. Per-pass state lives in a
//! reusable [`FmWorkspace`] of flat arrays — net side-occupancy counters,
//! a per-vertex gain array, a locked bitset, and the tentative move log —
//! so a multilevel V-cycle allocates them once, not once per level per
//! pass.
//!
//! Three properties make the pass fast:
//!
//! * **Fused parallel initialization.** The per-net side counters and the
//!   per-vertex starting gains are elementwise maps, computed in chunked
//!   sweeps through `tvp-parallel`. Each element depends only on the
//!   committed `sides`, so the filled arrays are bitwise identical for
//!   every thread count.
//! * **Critical-net gain updates.** Committing a move updates neighbor
//!   gains only on *critical* nets — those whose side counts cross the
//!   0/1 thresholds — via the textbook four-rule delta, instead of
//!   recomputing every neighbor's full gain on every incident net. Work
//!   per commit drops from O(Σ|e|·deg) to O(Σ_critical |e|).
//! * **O(1) staleness checks.** Every gain change pushes a fresh heap
//!   entry, so an entry is current exactly when its key equals the gain
//!   array's value — popping validates with one comparison instead of a
//!   full gain recomputation.
//!
//! Each pass tentatively moves every free vertex once (best-gain first,
//! balance permitting) and rolls back to the best prefix. A cooperative
//! stop callback is polled between chunks of pops; on cancellation the
//! pass still rolls back to the best prefix seen, so callers always
//! receive a legal (if less refined) assignment.

use crate::multilevel::FixedSide;
use crate::{BisectConfig, Hypergraph, StopFn};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tvp_parallel as parallel;

/// Chunking floor for the per-pass initialization sweeps. Gain and
/// counter fills are a few ns per element, so chunks must be large to
/// amortize dispatch.
const INIT_MIN_CHUNK: usize = 4096;

/// Below this many elements the initialization sweeps run inline (same
/// chunk boundaries, so bitwise identical to the dispatched result).
const INIT_SERIAL_BELOW: usize = 1 << 15;

/// The stop callback is polled every `STOP_POLL_MASK + 1` heap pops.
const STOP_POLL_MASK: u64 = 0x3FF;

/// Heap entry ordered by gain (then vertex for determinism).
#[derive(PartialEq, Debug)]
pub(crate) struct Candidate {
    gain: f64,
    vertex: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Flat scratch state for FM passes, reused across the levels and passes
/// of one V-cycle (and across V-cycles when the caller keeps it alive).
#[derive(Default)]
pub(crate) struct FmWorkspace {
    /// Side-occupancy counts per net.
    count: Vec<[u32; 2]>,
    /// Current gain of each vertex, maintained incrementally.
    gain: Vec<f64>,
    /// Locked bitset (one bit per vertex).
    locked: Vec<u64>,
    /// Recycled backing storage for the candidate heap.
    heap_buf: Vec<Candidate>,
    /// Tentative move log for best-prefix rollback.
    moves: Vec<u32>,
    /// Vertices whose gain changed during the current commit.
    touched: Vec<u32>,
    /// Commit stamp per vertex, deduplicating `touched` pushes.
    touch_stamp: Vec<u32>,
}

#[inline]
fn is_locked(locked: &[u64], v: u32) -> bool {
    locked[(v >> 6) as usize] >> (v & 63) & 1 == 1
}

#[inline]
fn lock(locked: &mut [u64], v: u32) {
    locked[(v >> 6) as usize] |= 1u64 << (v & 63);
}

/// In-place FM refinement of `sides`. Returns the total cut improvement.
///
/// `fixed[v]` pins vertices; pinned vertices are never moved. `sides` must
/// be consistent with `fixed` on entry. A `stop` callback that returns
/// `true` ends refinement early with the best assignment found so far.
pub(crate) fn refine(
    hg: &Hypergraph,
    sides: &mut [u8],
    fixed: &[FixedSide],
    config: &BisectConfig,
    ws: &mut FmWorkspace,
    stop: Option<&StopFn>,
) -> f64 {
    let n = hg.num_vertices();
    debug_assert_eq!(sides.len(), n);
    debug_assert_eq!(fixed.len(), n);
    let total = hg.total_vertex_weight();
    // Classic FM slack: a side must always be allowed to grow by at least
    // one (heaviest) vertex past its target, or perfectly balanced states
    // would be local minima with no legal moves at all.
    let wmax = (0..n as u32)
        .map(|v| hg.vertex_weight(v))
        .fold(0.0f64, f64::max);
    let max_side = [
        config
            .max_side0(total)
            .max(config.target_fraction * total + wmax),
        config
            .max_side1(total)
            .max((1.0 - config.target_fraction) * total + wmax),
    ];

    let mut total_improvement = 0.0;
    for _ in 0..config.max_passes {
        if stop.is_some_and(|s| s()) {
            break;
        }
        let improvement = fm_pass(hg, sides, fixed, max_side, ws, stop);
        total_improvement += improvement;
        if improvement <= 0.0 {
            break;
        }
    }
    total_improvement
}

/// Starting gain of `v` from the committed counters: +w for every net the
/// move would uncut, −w for every net it would newly cut.
fn gain_of(hg: &Hypergraph, v: u32, sides: &[u8], count: &[[u32; 2]]) -> f64 {
    let s = sides[v as usize] as usize;
    let t = 1 - s;
    let mut g = 0.0;
    for &e in hg.vertex_nets(v) {
        let c = count[e as usize];
        let w = hg.net_weight(e);
        if c[t] > 0 {
            if c[s] == 1 {
                g += w; // net becomes uncut
            }
        } else {
            g -= w; // net becomes cut
        }
    }
    g
}

/// One FM pass; returns the cut improvement it achieved (≥ 0).
fn fm_pass(
    hg: &Hypergraph,
    sides: &mut [u8],
    fixed: &[FixedSide],
    max_side: [f64; 2],
    ws: &mut FmWorkspace,
    stop: Option<&StopFn>,
) -> f64 {
    let n = hg.num_vertices();

    // Fused initialization: the per-net side counters and the per-vertex
    // gains are independent elementwise maps over the committed `sides`,
    // chunked through the pool (identical results at any thread count).
    ws.count.clear();
    ws.count.resize(hg.num_nets(), [0u32; 2]);
    {
        let sides: &[u8] = sides;
        parallel::for_each_chunk_mut_cutoff(
            &mut ws.count,
            INIT_MIN_CHUNK,
            INIT_SERIAL_BELOW,
            |start, chunk| {
                for (off, c) in chunk.iter_mut().enumerate() {
                    for &v in hg.net((start + off) as u32) {
                        c[sides[v as usize] as usize] += 1;
                    }
                }
            },
        );
    }
    ws.gain.clear();
    ws.gain.resize(n, 0.0);
    {
        let sides: &[u8] = sides;
        let count: &[[u32; 2]] = &ws.count;
        parallel::for_each_chunk_mut_cutoff(
            &mut ws.gain,
            INIT_MIN_CHUNK,
            INIT_SERIAL_BELOW,
            |start, chunk| {
                for (off, g) in chunk.iter_mut().enumerate() {
                    *g = gain_of(hg, (start + off) as u32, sides, count);
                }
            },
        );
    }
    let mut side_weight = [0.0f64; 2];
    for v in 0..n {
        side_weight[sides[v] as usize] += hg.vertex_weight(v as u32);
    }

    ws.locked.clear();
    ws.locked.resize(n.div_ceil(64), 0);
    ws.touch_stamp.clear();
    ws.touch_stamp.resize(n, 0);
    let mut stamp = 0u32;

    // Build the heap in one O(n) heapify from the recycled buffer.
    ws.heap_buf.clear();
    for v in 0..n as u32 {
        if fixed[v as usize] == FixedSide::Free {
            ws.heap_buf.push(Candidate {
                gain: ws.gain[v as usize],
                vertex: v,
            });
        } else {
            lock(&mut ws.locked, v);
        }
    }
    let mut heap = BinaryHeap::from(std::mem::take(&mut ws.heap_buf));

    // Tentative move sequence with best-prefix rollback.
    ws.moves.clear();
    let mut cum_gain = 0.0;
    let mut best_gain = 0.0;
    let mut best_len = 0usize;
    let mut pops = 0u64;

    // Updates a neighbor's gain during a commit and remembers it for one
    // fresh heap push once the commit's arithmetic is complete.
    macro_rules! bump {
        ($u:expr, $delta:expr) => {{
            let u: u32 = $u;
            if !is_locked(&ws.locked, u) {
                ws.gain[u as usize] += $delta;
                if ws.touch_stamp[u as usize] != stamp {
                    ws.touch_stamp[u as usize] = stamp;
                    ws.touched.push(u);
                }
            }
        }};
    }

    while let Some(Candidate { gain, vertex }) = heap.pop() {
        pops += 1;
        if pops & STOP_POLL_MASK == 0 && stop.is_some_and(|s| s()) {
            // Cancelled: fall through to the best-prefix rollback below so
            // the caller still gets the best legal assignment seen.
            break;
        }
        let vi = vertex as usize;
        if is_locked(&ws.locked, vertex) || gain != ws.gain[vi] {
            continue; // already moved this pass, or a stale entry
        }
        let s = sides[vi] as usize;
        let t = 1 - s;
        let w = hg.vertex_weight(vertex);
        if side_weight[t] + w > max_side[t] {
            // Balance forbids this move now; lock it for this pass so we
            // don't spin on it.
            lock(&mut ws.locked, vertex);
            continue;
        }

        // Commit the tentative move: lock first so the critical-net scans
        // below skip the mover, flip `sides` last so the scans still see
        // the pre-move side assignment the counters describe.
        lock(&mut ws.locked, vertex);
        side_weight[s] -= w;
        side_weight[t] += w;
        stamp += 1;
        ws.touched.clear();
        for &e in hg.vertex_nets(vertex) {
            let we = hg.net_weight(e);
            let pins = hg.net(e);
            let c = &ws.count[e as usize];
            // Before the counter update (mover still counted on side s):
            if c[t] == 0 {
                // The net was uncut; every free pin loses its −w term.
                for &u in pins {
                    bump!(u, we);
                }
            } else if c[t] == 1 {
                // The lone side-t pin was about to uncut the net.
                for &u in pins {
                    if sides[u as usize] as usize == t {
                        bump!(u, -we);
                        break;
                    }
                }
            }
            let c = &mut ws.count[e as usize];
            c[s] -= 1;
            c[t] += 1;
            let c = &ws.count[e as usize];
            // After the counter update (mover now counted on side t):
            if c[s] == 0 {
                // The net is uncut on side t; every free pin gains −w.
                for &u in pins {
                    bump!(u, -we);
                }
            } else if c[s] == 1 {
                // One pin remains on side s; moving it would uncut.
                for &u in pins {
                    if u != vertex && sides[u as usize] as usize == s {
                        bump!(u, we);
                        break;
                    }
                }
            }
        }
        sides[vi] = t as u8;
        for &u in &ws.touched {
            heap.push(Candidate {
                gain: ws.gain[u as usize],
                vertex: u,
            });
        }
        ws.moves.push(vertex);
        cum_gain += gain;
        if cum_gain > best_gain + 1e-12 {
            best_gain = cum_gain;
            best_len = ws.moves.len();
        }
    }

    // Roll back moves past the best prefix.
    for &v in &ws.moves[best_len..] {
        sides[v as usize] ^= 1;
    }
    // Recycle the heap's backing storage for the next pass.
    ws.heap_buf = heap.into_vec();
    ws.heap_buf.clear();
    best_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::FixedSide;

    fn refine_fresh(
        hg: &Hypergraph,
        sides: &mut [u8],
        fixed: &[FixedSide],
        config: &BisectConfig,
    ) -> f64 {
        refine(hg, sides, fixed, config, &mut FmWorkspace::default(), None)
    }

    /// Two tight clusters joined by one weak net; start with a bad split.
    fn clustered() -> Hypergraph {
        let mut hg = Hypergraph::new(8);
        for c in [0u32, 4] {
            hg.add_net(&[c, c + 1], 4.0);
            hg.add_net(&[c + 1, c + 2], 4.0);
            hg.add_net(&[c + 2, c + 3], 4.0);
            hg.add_net(&[c, c + 3], 4.0);
        }
        hg.add_net(&[0, 4], 1.0);
        hg.finalize();
        hg
    }

    #[test]
    fn recovers_natural_clusters() {
        let hg = clustered();
        // Interleaved start: cut = all 8 cluster nets + maybe bridge.
        let mut sides = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = hg.cut(&sides);
        let fixed = vec![FixedSide::Free; 8];
        let gain = refine_fresh(&hg, &mut sides, &fixed, &BisectConfig::default());
        let after = hg.cut(&sides);
        assert!((before - gain - after).abs() < 1e-9, "gain accounting");
        assert_eq!(after, 1.0, "optimal split cuts only the bridge net");
        assert_eq!(sides[0], sides[1]);
        assert_eq!(sides[0], sides[2]);
        assert_eq!(sides[0], sides[3]);
        assert_ne!(sides[0], sides[4]);
    }

    #[test]
    fn respects_fixed_vertices() {
        let hg = clustered();
        let mut sides = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut fixed = vec![FixedSide::Free; 8];
        // Pin vertex 4 to side 0: the bridge can be uncut only by moving
        // the whole second cluster, which balance forbids... pin it and
        // verify it never moves.
        fixed[4] = FixedSide::Side1;
        sides[4] = 1;
        refine_fresh(&hg, &mut sides, &fixed, &BisectConfig::default());
        assert_eq!(sides[4], 1);
    }

    #[test]
    fn respects_balance() {
        // A star: center connected to 6 leaves. Unbalanced moves would put
        // everything on one side.
        let mut hg = Hypergraph::new(7);
        for leaf in 1..7u32 {
            hg.add_net(&[0, leaf], 1.0);
        }
        hg.finalize();
        let mut sides = vec![0, 0, 0, 1, 1, 1, 1];
        let cfg = BisectConfig {
            tolerance: 0.1,
            ..BisectConfig::default()
        };
        refine_fresh(&hg, &mut sides, &[FixedSide::Free; 7], &cfg);
        let w0 = sides.iter().filter(|&&s| s == 0).count();
        assert!((3..=4).contains(&w0), "split {w0}/7 violates tolerance");
    }

    #[test]
    fn no_negative_improvement() {
        let hg = clustered();
        let mut sides = vec![0, 0, 0, 0, 1, 1, 1, 1]; // already optimal
        let before = hg.cut(&sides);
        let gain = refine_fresh(
            &hg,
            &mut sides,
            &[FixedSide::Free; 8],
            &BisectConfig::default(),
        );
        assert!(gain >= 0.0);
        assert!(hg.cut(&sides) <= before);
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_state() {
        // Run the same refinement twice through one workspace and once
        // through a fresh one; stale scratch must never leak through.
        let hg = clustered();
        let fixed = vec![FixedSide::Free; 8];
        let config = BisectConfig::default();
        let mut ws = FmWorkspace::default();
        let mut warmup = vec![0, 1, 1, 0, 1, 0, 0, 1];
        refine(&hg, &mut warmup, &fixed, &config, &mut ws, None);
        let mut reused = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut fresh = reused.clone();
        let g1 = refine(&hg, &mut reused, &fixed, &config, &mut ws, None);
        let g2 = refine_fresh(&hg, &mut fresh, &fixed, &config);
        assert_eq!(reused, fresh);
        assert_eq!(g1, g2);
    }

    #[test]
    fn stop_callback_halts_refinement_and_leaves_sides_legal() {
        let hg = clustered();
        let fixed = vec![FixedSide::Free; 8];
        let mut sides = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before: Vec<u8> = sides.clone();
        let stop = || true;
        let gain = refine(
            &hg,
            &mut sides,
            &fixed,
            &BisectConfig::default(),
            &mut FmWorkspace::default(),
            Some(&stop),
        );
        // An immediately-firing stop means no pass ran at all.
        assert_eq!(gain, 0.0);
        assert_eq!(sides, before);
        assert!(sides.iter().all(|&s| s <= 1), "sides stay 0/1");
    }

    #[test]
    fn incremental_gains_match_fresh_recomputation() {
        // After a full pass the incremental gain array must agree with a
        // from-scratch recomputation for every unlocked configuration the
        // next pass would start from (counters describe `sides` exactly).
        let hg = clustered();
        let fixed = vec![FixedSide::Free; 8];
        let mut sides = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut ws = FmWorkspace::default();
        refine(
            &hg,
            &mut sides,
            &fixed,
            &BisectConfig::default(),
            &mut ws,
            None,
        );
        // Rebuild counters from the final sides and compare gain_of
        // against a second refine's initial state: a zero-gain fixpoint
        // must report no improvement.
        let second = refine(
            &hg,
            &mut sides,
            &fixed,
            &BisectConfig::default(),
            &mut ws,
            None,
        );
        assert_eq!(second, 0.0, "refinement converged to a fixpoint");
    }
}
