//! Multilevel hypergraph bisection for recursive-bisection placement.
//!
//! The DAC'07 flow uses hMetis for min-cut bisection inside its 3D recursive
//! bisection global placer. hMetis is closed source, so this crate provides
//! a from-scratch multilevel bisector with the same interface properties the
//! placer needs:
//!
//! * **min-cut objective** on weighted hypergraphs (weighted hyperedge cut),
//! * **balance tolerance** derived from region whitespace,
//! * **fixed vertices** so terminal propagation can pin external
//!   connectivity to a side,
//! * **random restarts** as a quality/runtime knob (the paper's §7 effort
//!   experiment).
//!
//! The algorithm is the classic V-cycle: first-choice coarsening →
//! greedy BFS initial partition → Fiduccia–Mattheyses refinement at every
//! level, repeated over `num_starts` seeds, keeping the best cut.
//!
//! # Example
//!
//! ```
//! use tvp_partition::{Hypergraph, BisectConfig, bisect};
//!
//! let mut hg = Hypergraph::new(4);
//! hg.add_net(&[0, 1], 1.0);
//! hg.add_net(&[2, 3], 1.0);
//! hg.add_net(&[1, 2], 1.0);
//! let result = bisect(&hg, &BisectConfig::default());
//! // The only 2-2 balanced bisection with cut 1 splits {0,1} | {2,3}.
//! assert_eq!(result.cut, 1.0);
//! assert_eq!(result.side(0), result.side(1));
//! assert_eq!(result.side(2), result.side(3));
//! ```

mod coarsen;
mod config;
mod fm;
mod hypergraph;
mod initial;
mod kway;
mod multilevel;

pub use config::BisectConfig;
pub use hypergraph::Hypergraph;
pub use kway::{partition_kway, KwayPartition};
pub use multilevel::{
    bisect, bisect_fixed, bisect_fixed_checked, Bisection, FixedSide, ImbalanceError,
};

pub(crate) use fm::refine;
