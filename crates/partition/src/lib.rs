//! Multilevel hypergraph bisection for recursive-bisection placement.
//!
//! The DAC'07 flow uses hMetis for min-cut bisection inside its 3D recursive
//! bisection global placer. hMetis is closed source, so this crate provides
//! a from-scratch multilevel bisector with the same interface properties the
//! placer needs:
//!
//! * **min-cut objective** on weighted hypergraphs (weighted hyperedge cut),
//! * **balance tolerance** derived from region whitespace,
//! * **fixed vertices** so terminal propagation can pin external
//!   connectivity to a side,
//! * **random restarts** as a quality/runtime knob (the paper's §7 effort
//!   experiment).
//!
//! The algorithm is the classic V-cycle: first-choice coarsening →
//! greedy BFS initial partition → Fiduccia–Mattheyses refinement at every
//! level, repeated over `num_starts` seeds, keeping the best cut.
//!
//! # Example
//!
//! ```
//! use tvp_partition::{Hypergraph, BisectConfig, bisect};
//!
//! let mut hg = Hypergraph::new(4);
//! hg.add_net(&[0, 1], 1.0);
//! hg.add_net(&[2, 3], 1.0);
//! hg.add_net(&[1, 2], 1.0);
//! let result = bisect(&hg, &BisectConfig::default());
//! // The only 2-2 balanced bisection with cut 1 splits {0,1} | {2,3}.
//! assert_eq!(result.cut, 1.0);
//! assert_eq!(result.side(0), result.side(1));
//! assert_eq!(result.side(2), result.side(3));
//! ```

mod coarsen;
mod config;
mod fm;
mod hypergraph;
mod initial;
mod kway;
mod multilevel;

pub use config::BisectConfig;
pub use hypergraph::Hypergraph;
pub use kway::{partition_kway, KwayPartition};
pub use multilevel::{
    bisect, bisect_fixed, bisect_fixed_checked, bisect_fixed_checked_with_stop,
    bisect_fixed_profiled, bisect_fixed_with_stop, BisectProfile, Bisection, FixedSide,
    ImbalanceError, LevelProfile,
};

/// Cooperative cancellation probe: polled between refinement chunks; a
/// `true` return ends the bisection early with the best legal assignment
/// found so far. Must be cheap (an atomic load or a clock read) — the FM
/// kernel polls it every ~1k heap operations.
pub type StopFn = dyn Fn() -> bool + Sync;

pub(crate) use fm::refine;

/// Benchmark-only hooks into the internal kernels. Hidden from docs and
/// semver-exempt: the criterion suite needs to time one FM refinement in
/// isolation (no coarsening, no restarts) without making the kernel API
/// public.
#[doc(hidden)]
pub mod bench_hooks {
    use crate::fm::FmWorkspace;
    use crate::multilevel::FixedSide;
    use crate::{BisectConfig, Hypergraph};

    /// Runs FM refinement on `sides` in place (up to `config.max_passes`
    /// passes) and returns the cut improvement. `hg` must be finalized.
    pub fn fm_refine(hg: &Hypergraph, sides: &mut [u8], config: &BisectConfig) -> f64 {
        let fixed = vec![FixedSide::Free; hg.num_vertices()];
        let mut ws = FmWorkspace::default();
        crate::fm::refine(hg, sides, &fixed, config, &mut ws, None)
    }
}
