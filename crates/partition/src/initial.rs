//! Greedy BFS initial partitioning of the coarsest level.

use crate::multilevel::FixedSide;
use crate::{BisectConfig, Hypergraph};
use rand::rngs::SmallRng;
use rand::RngExt;
use std::collections::VecDeque;

/// Produces an initial side assignment honoring `fixed`.
///
/// Free vertices are assigned by region growing: starting from a random
/// free seed, BFS over net neighborhoods accumulates vertices into side 0
/// until its weight reaches the target fraction; the rest go to side 1.
/// BFS growth keeps side 0 connected, which gives FM a much better start
/// than a random split.
pub(crate) fn initial_partition(
    hg: &Hypergraph,
    fixed: &[FixedSide],
    config: &BisectConfig,
    rng: &mut SmallRng,
) -> Vec<u8> {
    let n = hg.num_vertices();
    let total = hg.total_vertex_weight();
    let mut sides = vec![1u8; n];
    let mut fixed_weight0 = 0.0;
    let mut free: Vec<u32> = Vec::new();
    for v in 0..n {
        match fixed[v] {
            FixedSide::Side0 => {
                sides[v] = 0;
                fixed_weight0 += hg.vertex_weight(v as u32);
            }
            FixedSide::Side1 => sides[v] = 1,
            FixedSide::Free => free.push(v as u32),
        }
    }
    if free.is_empty() {
        return sides;
    }
    let target0 = config.target_fraction * total;
    let mut weight0 = fixed_weight0;
    if weight0 >= target0 {
        return sides; // fixed vertices already fill side 0
    }

    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let seed = free[rng.random_range(0..free.len())];
    queue.push_back(seed);
    visited[seed as usize] = true;

    // `cursor` restarts BFS from unvisited vertices if the component runs
    // out before side 0 fills up.
    let mut cursor = 0usize;
    loop {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Find the next unvisited free vertex.
                let mut next = None;
                while cursor < free.len() {
                    let u = free[cursor];
                    cursor += 1;
                    if !visited[u as usize] {
                        next = Some(u);
                        break;
                    }
                }
                match next {
                    Some(u) => {
                        visited[u as usize] = true;
                        u
                    }
                    None => break,
                }
            }
        };
        if fixed[v as usize] == FixedSide::Free {
            sides[v as usize] = 0;
            weight0 += hg.vertex_weight(v);
            if weight0 >= target0 {
                break;
            }
        }
        for &e in hg.vertex_nets(v) {
            let pins = hg.net(e);
            if pins.len() > 64 {
                continue; // giant nets add no locality
            }
            for &u in pins {
                if !visited[u as usize] && fixed[u as usize] == FixedSide::Free {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid(n: usize) -> Hypergraph {
        // n x n mesh of 2-pin nets.
        let mut hg = Hypergraph::new(n * n);
        for r in 0..n {
            for c in 0..n {
                let v = (r * n + c) as u32;
                if c + 1 < n {
                    hg.add_net(&[v, v + 1], 1.0);
                }
                if r + 1 < n {
                    hg.add_net(&[v, v + n as u32], 1.0);
                }
            }
        }
        hg.finalize();
        hg
    }

    #[test]
    fn splits_near_target() {
        let hg = grid(8);
        let cfg = BisectConfig::default();
        let fixed = vec![FixedSide::Free; 64];
        let mut rng = SmallRng::seed_from_u64(7);
        let sides = initial_partition(&hg, &fixed, &cfg, &mut rng);
        let w0 = sides.iter().filter(|&&s| s == 0).count();
        assert!(
            (28..=36).contains(&w0),
            "side 0 got {w0}/64, expected near half"
        );
    }

    #[test]
    fn honors_fixed_assignments() {
        let hg = grid(4);
        let cfg = BisectConfig::default();
        let mut fixed = vec![FixedSide::Free; 16];
        fixed[0] = FixedSide::Side1;
        fixed[15] = FixedSide::Side0;
        let mut rng = SmallRng::seed_from_u64(8);
        let sides = initial_partition(&hg, &fixed, &cfg, &mut rng);
        assert_eq!(sides[0], 1);
        assert_eq!(sides[15], 0);
    }

    #[test]
    fn all_fixed_is_identity() {
        let hg = grid(2);
        let cfg = BisectConfig::default();
        let fixed = vec![
            FixedSide::Side0,
            FixedSide::Side1,
            FixedSide::Side1,
            FixedSide::Side0,
        ];
        let mut rng = SmallRng::seed_from_u64(9);
        let sides = initial_partition(&hg, &fixed, &cfg, &mut rng);
        assert_eq!(sides, vec![0, 1, 1, 0]);
    }

    #[test]
    fn disconnected_components_still_fill_side0() {
        // Two disjoint cliques; BFS must jump components to hit the target.
        let mut hg = Hypergraph::new(8);
        hg.add_net(&[0, 1, 2, 3], 1.0);
        hg.add_net(&[4, 5, 6, 7], 1.0);
        hg.finalize();
        let cfg = BisectConfig::default();
        let fixed = vec![FixedSide::Free; 8];
        let mut rng = SmallRng::seed_from_u64(10);
        let sides = initial_partition(&hg, &fixed, &cfg, &mut rng);
        let w0 = sides.iter().filter(|&&s| s == 0).count();
        assert!(w0 >= 4, "side 0 got only {w0}");
    }
}
