//! Weighted hypergraph with CSR incidence in both directions.

/// A weighted hypergraph.
///
/// Vertices are `0..num_vertices()` with `f64` weights (cell areas in the
/// placement use case); nets are weighted hyperedges over vertex sets.
/// Nets are added incrementally; vertex→net incidence is built lazily on
/// first query and cached.
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    vertex_weights: Vec<f64>,
    net_weights: Vec<f64>,
    net_offsets: Vec<u32>,
    net_vertices: Vec<u32>,
    /// Lazily built CSR of nets per vertex.
    vtx_offsets: Vec<u32>,
    vtx_nets: Vec<u32>,
    finalized: bool,
}

impl Hypergraph {
    /// Creates a hypergraph with `num_vertices` unit-weight vertices and no
    /// nets.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            vertex_weights: vec![1.0; num_vertices],
            net_weights: Vec::new(),
            net_offsets: vec![0],
            net_vertices: Vec::new(),
            vtx_offsets: Vec::new(),
            vtx_nets: Vec::new(),
            finalized: false,
        }
    }

    /// Creates a hypergraph with the given vertex weights and no nets.
    pub fn with_vertex_weights(weights: Vec<f64>) -> Self {
        Self {
            vertex_weights: weights,
            net_weights: Vec::new(),
            net_offsets: vec![0],
            net_vertices: Vec::new(),
            vtx_offsets: Vec::new(),
            vtx_nets: Vec::new(),
            finalized: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Total number of pins (vertex–net incidences).
    pub fn num_pins(&self) -> usize {
        self.net_vertices.len()
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_weight(&self, v: u32) -> f64 {
        self.vertex_weights[v as usize]
    }

    /// Sets the weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_vertex_weight(&mut self, v: u32, weight: f64) {
        self.vertex_weights[v as usize] = weight;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vertex_weights.iter().sum()
    }

    /// Weight of net `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn net_weight(&self, e: u32) -> f64 {
        self.net_weights[e as usize]
    }

    /// Vertices of net `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn net(&self, e: u32) -> &[u32] {
        let lo = self.net_offsets[e as usize] as usize;
        let hi = self.net_offsets[e as usize + 1] as usize;
        &self.net_vertices[lo..hi]
    }

    /// Adds a net over `vertices` with the given weight and returns its
    /// index. Duplicate vertices within one net are removed; nets that end
    /// up with fewer than two distinct vertices are still stored (they can
    /// never be cut, so they are harmless) to keep indices stable for
    /// callers.
    ///
    /// # Panics
    ///
    /// Panics if any vertex index is out of range.
    pub fn add_net(&mut self, vertices: &[u32], weight: f64) -> u32 {
        assert!(
            vertices
                .iter()
                .all(|&v| (v as usize) < self.vertex_weights.len()),
            "net references out-of-range vertex"
        );
        let start = self.net_vertices.len();
        for &v in vertices {
            if !self.net_vertices[start..].contains(&v) {
                self.net_vertices.push(v);
            }
        }
        self.net_offsets.push(self.net_vertices.len() as u32);
        self.net_weights.push(weight);
        self.finalized = false;
        (self.net_weights.len() - 1) as u32
    }

    /// Adds a net whose pins are already strictly sorted (and therefore
    /// deduplicated), skipping [`add_net`](Self::add_net)'s quadratic
    /// duplicate scan. The fast path for bulk construction of coarse and
    /// region hypergraphs whose callers sort-and-dedup pins anyway.
    ///
    /// # Panics
    ///
    /// Panics if any vertex index is out of range or the pins are not
    /// strictly increasing.
    pub fn add_net_sorted(&mut self, vertices: &[u32], weight: f64) -> u32 {
        assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "pins must be strictly increasing"
        );
        if let Some(&last) = vertices.last() {
            assert!(
                (last as usize) < self.vertex_weights.len(),
                "net references out-of-range vertex"
            );
        }
        self.net_vertices.extend_from_slice(vertices);
        self.net_offsets.push(self.net_vertices.len() as u32);
        self.net_weights.push(weight);
        self.finalized = false;
        (self.net_weights.len() - 1) as u32
    }

    /// Builds the vertex→net incidence if nets changed since the last call.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let n = self.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for &v in &self.net_vertices {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut vtx_nets = vec![0u32; self.net_vertices.len()];
        let mut cursor = counts.clone();
        for e in 0..self.num_nets() {
            let lo = self.net_offsets[e] as usize;
            let hi = self.net_offsets[e + 1] as usize;
            for &v in &self.net_vertices[lo..hi] {
                vtx_nets[cursor[v as usize] as usize] = e as u32;
                cursor[v as usize] += 1;
            }
        }
        self.vtx_offsets = counts;
        self.vtx_nets = vtx_nets;
        self.finalized = true;
    }

    /// Whether the vertex→net incidence is current (i.e.
    /// [`finalize`](Self::finalize) was called after the last
    /// [`add_net`](Self::add_net)).
    pub fn has_incidence(&self) -> bool {
        self.finalized
    }

    /// Nets incident to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if the incidence has not been built (call
    /// [`finalize`](Self::finalize) after the last `add_net`) or if `v` is
    /// out of range.
    pub fn vertex_nets(&self, v: u32) -> &[u32] {
        assert!(self.finalized, "call finalize() before vertex_nets()");
        let lo = self.vtx_offsets[v as usize] as usize;
        let hi = self.vtx_offsets[v as usize + 1] as usize;
        &self.vtx_nets[lo..hi]
    }

    /// Computes the weighted hyperedge cut of a side assignment
    /// (`sides[v]` is 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != num_vertices()`.
    pub fn cut(&self, sides: &[u8]) -> f64 {
        assert_eq!(sides.len(), self.num_vertices());
        let mut cut = 0.0;
        for e in 0..self.num_nets() {
            let pins = self.net(e as u32);
            if pins.is_empty() {
                continue;
            }
            let first = sides[pins[0] as usize];
            if pins.iter().any(|&v| sides[v as usize] != first) {
                cut += self.net_weights[e];
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        let mut hg = Hypergraph::new(3);
        hg.add_net(&[0, 1], 2.0);
        hg.add_net(&[1, 2], 3.0);
        hg.add_net(&[0, 2], 5.0);
        hg.finalize();
        hg
    }

    #[test]
    fn counts_and_access() {
        let hg = triangle();
        assert_eq!(hg.num_vertices(), 3);
        assert_eq!(hg.num_nets(), 3);
        assert_eq!(hg.num_pins(), 6);
        assert_eq!(hg.net(1), &[1, 2]);
        assert_eq!(hg.net_weight(2), 5.0);
        assert_eq!(hg.total_vertex_weight(), 3.0);
    }

    #[test]
    fn vertex_incidence() {
        let hg = triangle();
        assert_eq!(hg.vertex_nets(0), &[0, 2]);
        assert_eq!(hg.vertex_nets(1), &[0, 1]);
        assert_eq!(hg.vertex_nets(2), &[1, 2]);
    }

    #[test]
    fn cut_computation() {
        let hg = triangle();
        assert_eq!(hg.cut(&[0, 0, 0]), 0.0);
        assert_eq!(hg.cut(&[0, 0, 1]), 3.0 + 5.0);
        assert_eq!(hg.cut(&[0, 1, 1]), 2.0 + 5.0);
    }

    #[test]
    fn dedupes_net_pins() {
        let mut hg = Hypergraph::new(2);
        hg.add_net(&[0, 1, 0, 1], 1.0);
        assert_eq!(hg.net(0), &[0, 1]);
    }

    #[test]
    fn sorted_fast_path_matches_add_net() {
        let mut a = Hypergraph::new(5);
        a.add_net(&[0, 2, 4], 2.5);
        a.finalize();
        let mut b = Hypergraph::new(5);
        b.add_net_sorted(&[0, 2, 4], 2.5);
        b.finalize();
        assert_eq!(a.net(0), b.net(0));
        assert_eq!(a.net_weight(0), b.net_weight(0));
        assert_eq!(a.vertex_nets(2), b.vertex_nets(2));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sorted_fast_path_rejects_unsorted_pins() {
        let mut hg = Hypergraph::new(3);
        hg.add_net_sorted(&[2, 1], 1.0);
    }

    #[test]
    fn refinalize_after_adding_nets() {
        let mut hg = triangle();
        hg.add_net(&[0, 1, 2], 1.0);
        hg.finalize();
        assert_eq!(hg.vertex_nets(0), &[0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out-of-range vertex")]
    fn rejects_out_of_range_pin() {
        let mut hg = Hypergraph::new(2);
        hg.add_net(&[0, 7], 1.0);
    }

    #[test]
    fn singleton_net_never_cut() {
        let mut hg = Hypergraph::new(2);
        hg.add_net(&[0], 9.0);
        hg.finalize();
        assert_eq!(hg.cut(&[0, 1]), 0.0);
    }
}
