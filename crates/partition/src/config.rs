//! Bisection configuration.

/// Configuration for [`bisect`](crate::bisect).
#[derive(Clone, PartialEq, Debug)]
pub struct BisectConfig {
    /// Target fraction of total vertex weight on side 0 (0.5 = even split).
    pub target_fraction: f64,
    /// Allowed deviation from the target fraction, as a fraction of total
    /// weight. The placer derives this from region whitespace.
    pub tolerance: f64,
    /// Independent multilevel runs; the best cut wins. More starts trade
    /// runtime for quality (the paper's §7 effort experiment).
    pub num_starts: usize,
    /// Maximum FM passes per level.
    pub max_passes: usize,
    /// Coarsening stops once this many vertices remain.
    pub coarsen_until: usize,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for BisectConfig {
    fn default() -> Self {
        Self {
            target_fraction: 0.5,
            tolerance: 0.1,
            num_starts: 1,
            max_passes: 4,
            coarsen_until: 96,
            seed: 1,
        }
    }
}

impl BisectConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different number of random starts.
    pub fn with_starts(mut self, num_starts: usize) -> Self {
        self.num_starts = num_starts.max(1);
        self
    }

    /// Returns the config with the balance tolerance doubled (capped at
    /// 0.45): the retry step a caller takes after
    /// [`bisect_fixed_checked`](crate::bisect_fixed_checked) reports an
    /// imbalance failure.
    pub fn relaxed(mut self) -> Self {
        self.tolerance = (self.tolerance * 2.0).min(0.45);
        self
    }

    /// Maximum weight allowed on side 0 for `total` weight.
    pub(crate) fn max_side0(&self, total: f64) -> f64 {
        (self.target_fraction + self.tolerance).min(1.0) * total
    }

    /// Maximum weight allowed on side 1 for `total` weight.
    pub(crate) fn max_side1(&self, total: f64) -> f64 {
        (1.0 - self.target_fraction + self.tolerance).min(1.0) * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_balanced() {
        let c = BisectConfig::default();
        assert_eq!(c.target_fraction, 0.5);
        assert!(c.tolerance > 0.0);
        assert_eq!(c.max_side0(10.0), 6.0);
        assert_eq!(c.max_side1(10.0), 6.0);
    }

    #[test]
    fn asymmetric_targets() {
        let c = BisectConfig {
            target_fraction: 0.3,
            tolerance: 0.05,
            ..BisectConfig::default()
        };
        assert!((c.max_side0(100.0) - 35.0).abs() < 1e-12);
        assert!((c.max_side1(100.0) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn builder_helpers() {
        let c = BisectConfig::default().with_seed(9).with_starts(0);
        assert_eq!(c.seed, 9);
        assert_eq!(c.num_starts, 1);
    }
}
